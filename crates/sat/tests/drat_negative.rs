//! Negative certification tests: the checker must reject every corrupted
//! or incomplete proof a hostile (or buggy) solver could present.
//!
//! The corruption classes mirror the ways a certification pipeline can
//! actually fail: truncation (crash/abort mid-proof), reordering (a lemma
//! claimed before its antecedents exist), single-literal mutation (memory
//! corruption or an emission bug), and cancellation (a solve that never
//! finished must not look finished).

use std::time::Duration;

use mm_sat::drat::{check, DratError, ProofStep};
use mm_sat::{Budget, CancellationToken, CnfFormula, DratProof, Lit, SatResult, Solver};

/// Pigeonhole `pigeons` into `holes` — UNSAT for pigeons > holes, with no
/// unit clauses, so the empty clause is never RUP of the bare formula.
#[allow(clippy::needless_range_loop)]
fn pigeonhole(pigeons: usize, holes: usize) -> CnfFormula {
    let mut cnf = CnfFormula::new();
    let vars: Vec<Vec<Lit>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| cnf.new_lit()).collect())
        .collect();
    for p in &vars {
        cnf.add_clause(p.iter().copied());
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                cnf.add_clause([!vars[p1][h], !vars[p2][h]]);
            }
        }
    }
    cnf
}

/// A deterministic certified refutation of php(5, 4).
fn certified_php() -> (CnfFormula, DratProof) {
    let cnf = pigeonhole(5, 4);
    let (result, _, proof) = Solver::new(cnf.clone()).solve_certified(Budget::new());
    assert_eq!(result, SatResult::Unsat);
    let proof = proof.expect("certified solve returns the log");
    check(&cnf, &proof).expect("the unmodified proof checks");
    (cnf, proof)
}

#[test]
fn truncated_proof_is_rejected() {
    let (cnf, proof) = certified_php();
    // Drop the conclusion, then progressively more of the tail: every
    // prefix lacks the empty clause and must be rejected.
    for keep in [proof.n_steps() - 1, proof.n_steps() / 2, 1, 0] {
        let truncated = DratProof::from_steps(proof.steps()[..keep].to_vec());
        assert_eq!(
            check(&cnf, &truncated),
            Err(DratError::NoEmptyClause),
            "truncated to {keep} steps"
        );
    }
}

#[test]
fn reordered_proof_is_rejected() {
    let (cnf, proof) = certified_php();
    // Move the concluding empty clause to the front: the formula has no
    // unit clauses, so nothing propagates and the claim cannot be RUP.
    let mut steps = proof.steps().to_vec();
    let conclusion = steps.pop().expect("non-empty proof");
    assert_eq!(conclusion, ProofStep::Add(Vec::new()));
    steps.insert(0, conclusion);
    let reordered = DratProof::from_steps(steps);
    assert_eq!(check(&cnf, &reordered), Err(DratError::NotRup { step: 0 }));
}

#[test]
fn single_literal_mutations_are_caught() {
    let (cnf, proof) = certified_php();
    // Flip the polarity of one literal at a time, in every position of
    // every addition. Corruptions of non-core lemmas are legitimately
    // ignored (lazy core marking, exactly like drat-trim), but the
    // derivation's load-bearing steps must be protected: at least one flip
    // in the spine must produce a rejection, and no flip may crash the
    // checker or mis-report anything but a clean verdict.
    let mut rejected = 0usize;
    let mut tried = 0usize;
    for (s, step) in proof.steps().iter().enumerate() {
        let ProofStep::Add(lits) = step else {
            continue;
        };
        for k in 0..lits.len() {
            tried += 1;
            let mut steps = proof.steps().to_vec();
            if let ProofStep::Add(ref mut mutated) = steps[s] {
                mutated[k] = !mutated[k];
            }
            if check(&cnf, &DratProof::from_steps(steps)).is_err() {
                rejected += 1;
            }
        }
    }
    assert!(tried > 0, "php(5,4) proof has addition literals to mutate");
    assert!(
        rejected > 0,
        "no single-literal mutation was rejected across {tried} flips"
    );
}

#[test]
fn foreign_empty_clause_claim_is_rejected() {
    // A "proof" that only claims the empty clause for a formula that is
    // not propagation-refutable must fail, even though the formula is
    // genuinely UNSAT — RUP is a derivation check, not an oracle.
    let cnf = pigeonhole(4, 3);
    let bare_claim = DratProof::from_steps(vec![ProofStep::Add(Vec::new())]);
    assert_eq!(check(&cnf, &bare_claim), Err(DratError::NotRup { step: 0 }));
}

#[test]
fn cancelled_solve_yields_unknown_without_checkable_proof() {
    // Pre-tripped token: the solver must bail out before any conclusion.
    let cnf = pigeonhole(6, 5);
    let token = CancellationToken::new();
    token.cancel();
    let (result, stats, proof) =
        Solver::new(cnf.clone()).solve_certified(Budget::new().with_cancellation(token));
    assert_eq!(result, SatResult::Unknown);
    assert!(stats.cancelled);
    let proof = proof.expect("the log itself is still returned");
    assert!(!proof.is_concluded());
    assert_eq!(check(&cnf, &proof), Err(DratError::NoEmptyClause));
}

#[test]
fn mid_run_cancellation_never_concludes_a_proof() {
    // Cancel from another thread while the solver is deep in a hard
    // instance: whatever partial derivation exists must not check.
    let cnf = pigeonhole(11, 10);
    let token = CancellationToken::new();
    let budget = Budget::new()
        .with_max_time(Duration::from_secs(120))
        .with_cancellation(token.clone());
    let solver_cnf = cnf.clone();
    let handle = std::thread::spawn(move || Solver::new(solver_cnf).solve_certified(budget));
    std::thread::sleep(Duration::from_millis(30));
    token.cancel();
    let (result, stats, proof) = handle.join().expect("solver thread");
    assert_eq!(result, SatResult::Unknown);
    assert!(stats.cancelled);
    let proof = proof.expect("log present");
    assert!(!proof.is_concluded());
    assert_eq!(check(&cnf, &proof), Err(DratError::NoEmptyClause));
}

#[test]
fn proof_for_a_different_formula_is_rejected() {
    // A valid php(5,4) proof replayed against php(4,3): the clause ids
    // cannot line up — additions reference variables the smaller formula
    // does not even have.
    let (_, proof) = certified_php();
    let smaller = pigeonhole(4, 3);
    assert!(check(&smaller, &proof).is_err());
}

#[test]
fn imported_clauses_never_leak_into_a_logged_proof() {
    use mm_sat::ClauseBus;

    // A sibling worker floods the bus with every clause it learns (the
    // u32::MAX threshold disables the LBD filter), including clauses a
    // logged solver could never derive at the point it would import them.
    let cnf = pigeonhole(6, 5);
    let bus = ClauseBus::new(u32::MAX);
    let mut feeder = Solver::new(cnf.clone()).with_clause_bus(bus.clone());
    assert!(feeder
        .solve_under_assumptions(&[], Budget::new())
        .is_unsat());
    assert!(bus.exported() > 0, "the feeder must have filled the bus");

    // A proof-logged solver attached to the same loaded bus must refuse
    // every import: each step of its DRAT log has to be RUP with respect
    // to its own derivation alone, which the checker verifies step by
    // step. A single imported (underivable) clause would surface here as
    // a check failure.
    let mut logged = Solver::new(cnf.clone())
        .with_clause_bus(bus.clone())
        .with_proof_writer(Box::<DratProof>::default());
    let before = bus.imported();
    let result = logged.solve_under_assumptions(&[], Budget::new());
    assert_eq!(result, SatResult::Unsat);
    assert_eq!(
        logged.imported_clauses(),
        0,
        "logged solver must not import"
    );
    assert_eq!(bus.imported(), before, "bus saw no consumption either");
}

#[test]
fn proof_of_bus_attached_solver_checks_end_to_end() {
    use mm_sat::ClauseBus;

    // Same setup, but driven through the certified one-shot wrapper the
    // synthesis pipeline uses — the resulting proof must pass the checker
    // even though a loaded bus was attached the whole time.
    let cnf = pigeonhole(6, 5);
    let bus = ClauseBus::new(u32::MAX);
    let mut feeder = Solver::new(cnf.clone()).with_clause_bus(bus.clone());
    assert!(feeder
        .solve_under_assumptions(&[], Budget::new())
        .is_unsat());

    let (result, stats, proof) = Solver::new(cnf.clone())
        .with_clause_bus(bus)
        .solve_certified(Budget::new());
    assert_eq!(result, SatResult::Unsat);
    let proof = proof.expect("certified solve returns the log");
    assert!(proof.is_concluded());
    let report = check(&cnf, &proof).expect("self-contained proof checks");
    assert_eq!(report.additions + report.deletions + 1, proof.n_steps());
    assert_eq!(stats.proof_steps as usize, proof.n_steps());
}

/// A deterministic certified refutation whose proof contains genuine
/// inprocessing steps: the pass runs with the log attached, so its unit
/// additions, strengthened/vivified clauses, BVE resolvents and deletions
/// all appear in the stream before the search-derived lemmas.
fn certified_inprocessed_php() -> (CnfFormula, DratProof) {
    let cnf = pigeonhole(5, 4);
    let mut solver = Solver::new(cnf.clone()).with_proof_writer(Box::<DratProof>::default());
    solver.inprocess_now();
    let stats = solver.stats();
    assert!(
        stats.eliminated_vars
            + stats.subsumed_clauses
            + stats.strengthened_clauses
            + stats.vivified_clauses
            > 0,
        "the pass must actually rewrite php(5,4): {stats}"
    );
    let (result, _, proof) = solver.solve_certified(Budget::new());
    assert_eq!(result, SatResult::Unsat);
    let proof = proof.expect("certified solve returns the log");
    assert!(
        proof
            .steps()
            .iter()
            .any(|s| matches!(s, ProofStep::Delete(_))),
        "inprocessing must emit deletions"
    );
    check(&cnf, &proof).expect("the unmodified inprocessed proof checks");
    (cnf, proof)
}

#[test]
fn corrupted_inprocessing_deletion_is_rejected() {
    let (cnf, proof) = certified_inprocessed_php();
    // Mutate each deletion into one naming a clause that was never in the
    // database (flip one literal). Every such corruption must surface as
    // DeleteUnknownClause at exactly that step — deletions are matched
    // against the live database, not taken on faith.
    let mut tried = 0usize;
    let mut rejected_at_step = 0usize;
    for (s, step) in proof.steps().iter().enumerate() {
        let ProofStep::Delete(lits) = step else {
            continue;
        };
        if lits.is_empty() {
            continue;
        }
        tried += 1;
        let mut steps = proof.steps().to_vec();
        if let ProofStep::Delete(ref mut mutated) = steps[s] {
            mutated[0] = !mutated[0];
        }
        match check(&cnf, &DratProof::from_steps(steps)) {
            Err(DratError::DeleteUnknownClause { step }) => {
                assert_eq!(step, s, "rejection must name the corrupted step");
                rejected_at_step += 1;
            }
            // Flipping may accidentally name another live clause, in
            // which case that clause vanishes instead: the proof may then
            // fail later, or — for a non-core clause — legitimately pass.
            _ => {}
        }
        if tried >= 25 {
            break; // bounded: the first deletions are the inprocessing ones
        }
    }
    assert!(tried > 0, "inprocessed php(5,4) proof has deletions");
    assert!(
        rejected_at_step > 0,
        "no corrupted deletion was pinned to its step across {tried} tries"
    );
}

#[test]
fn fabricated_inprocessing_addition_is_rejected() {
    let (cnf, proof) = certified_inprocessed_php();
    // Splice a fabricated "resolvent" in front of the first real addition:
    // a fresh clause over the formula's variables that no propagation
    // derives (php row disjunction negated pairwise would be RUP, so use a
    // unit that nothing implies). A checker that trusted inprocessing
    // additions blindly would accept it.
    let bogus = ProofStep::Add(vec![Lit::from_code(0)]);
    let mut steps = proof.steps().to_vec();
    steps.insert(0, bogus);
    assert_eq!(
        check(&cnf, &DratProof::from_steps(steps)),
        Err(DratError::NotRup { step: 0 })
    );
}

#[test]
fn early_deletion_of_a_parent_breaks_the_derivation() {
    let (cnf, proof) = certified_inprocessed_php();
    // Inprocessing's discipline is add-before-delete: a resolvent is only
    // RUP while its parents are still in the database. Hoisting the first
    // deletion in front of the first addition must therefore break either
    // the deletion itself (clause not yet present — it may have been
    // emitted by a rewrite) or a later RUP step that needed the clause.
    let first_add = proof
        .steps()
        .iter()
        .position(|s| matches!(s, ProofStep::Add(_)))
        .expect("proof has additions");
    let first_del = proof
        .steps()
        .iter()
        .position(|s| matches!(s, ProofStep::Delete(_)))
        .expect("proof has deletions");
    if first_del < first_add {
        // Deletions of satisfied originals can legitimately precede any
        // addition; move the first post-addition deletion instead.
        return;
    }
    let mut steps = proof.steps().to_vec();
    let del = steps.remove(first_del);
    steps.insert(0, del);
    let verdict = check(&cnf, &DratProof::from_steps(steps));
    assert!(
        verdict.is_err(),
        "hoisted deletion must invalidate the proof, got {verdict:?}"
    );
}

#[test]
fn inprocessed_cancelled_solve_has_no_checkable_proof() {
    // Inprocessing plus cancellation: a pass may have emitted additions
    // and deletions, but without the concluding empty clause the stream
    // must never check.
    let cnf = pigeonhole(6, 5);
    let token = CancellationToken::new();
    let mut solver = Solver::new(cnf.clone()).with_proof_writer(Box::<DratProof>::default());
    solver.inprocess_now();
    token.cancel();
    let (result, stats, proof) = solver.solve_certified(Budget::new().with_cancellation(token));
    assert_eq!(result, SatResult::Unknown);
    assert!(stats.cancelled);
    let proof = proof.expect("log present");
    assert!(!proof.is_concluded());
    assert_eq!(check(&cnf, &proof), Err(DratError::NoEmptyClause));
}
