use std::fmt;

use crate::{Lit, Var};

/// Available encodings for the *exactly-one* constraint μ(y₁, …, y_k) of the
/// paper's Eq. 3.
///
/// The paper uses the naive pairwise encoding (`(y₁ ∨ … ∨ y_k) ∧
/// ⋀_{i<j}(¬y_i ∨ ¬y_j)`); the sequential and commander encodings trade
/// auxiliary variables for asymptotically fewer clauses and are provided for
/// the encoder ablation study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExactlyOne {
    /// `O(k²)` binary clauses, no auxiliary variables (the paper's μ).
    #[default]
    Pairwise,
    /// Sinz's sequential counter: `O(k)` clauses, `k − 1` auxiliaries.
    Sequential,
    /// Commander encoding with groups of 3: `O(k)` clauses and auxiliaries,
    /// recursing on the commanders.
    Commander,
}

/// A CNF formula under construction.
///
/// Variables are allocated through [`new_var`](Self::new_var) /
/// [`new_lit`](Self::new_lit); clauses are added through
/// [`add_clause`](Self::add_clause) and the higher-level helpers
/// ([`add_guarded_iff`](Self::add_guarded_iff), [`exactly_one`](Self::exactly_one), …) used
/// by the synthesis encoder.
///
/// # Example
///
/// ```
/// use mm_sat::{CnfFormula, ExactlyOne};
///
/// let mut cnf = CnfFormula::new();
/// let ys: Vec<_> = (0..4).map(|_| cnf.new_lit()).collect();
/// cnf.exactly_one(&ys, ExactlyOne::Pairwise);
/// assert_eq!(cnf.n_clauses(), 1 + 6); // 1 at-least-one + C(4,2) at-most-one
/// ```
#[derive(Debug, Clone, Default)]
pub struct CnfFormula {
    n_vars: u32,
    clauses: Vec<Vec<Lit>>,
}

impl CnfFormula {
    /// Creates an empty formula with no variables.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.n_vars);
        self.n_vars += 1;
        v
    }

    /// Allocates a fresh variable and returns its positive literal.
    pub fn new_lit(&mut self) -> Lit {
        self.new_var().positive()
    }

    /// Allocates `n` fresh variables at once, returning their positive
    /// literals (e.g. one activation-literal family of a shared base
    /// encoding).
    pub fn new_lits(&mut self, n: usize) -> Vec<Lit> {
        (0..n).map(|_| self.new_lit()).collect()
    }

    /// Ensures at least `n` variables exist.
    pub fn reserve_vars(&mut self, n: u32) {
        self.n_vars = self.n_vars.max(n);
    }

    /// Number of allocated variables.
    pub fn n_vars(&self) -> u32 {
        self.n_vars
    }

    /// Number of clauses added so far.
    pub fn n_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The clauses added so far.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// Duplicated literals are removed and tautological clauses (containing
    /// both polarities of a variable) are dropped. Variables mentioned by
    /// the clause are implicitly allocated.
    ///
    /// # Panics
    ///
    /// Panics if the clause is empty: an empty clause makes the formula
    /// trivially unsatisfiable, and constructing one is always an encoder
    /// bug in this workspace.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        let mut clause: Vec<Lit> = lits.into_iter().collect();
        assert!(!clause.is_empty(), "attempted to add an empty clause");
        clause.sort_unstable_by_key(|l| l.code());
        clause.dedup();
        // Tautology: adjacent codes 2v, 2v+1 after sort.
        if clause.windows(2).any(|w| w[0].code() ^ 1 == w[1].code()) {
            return;
        }
        if let Some(max) = clause.iter().map(|l| l.var().index()).max() {
            self.reserve_vars(max + 1);
        }
        self.clauses.push(clause);
    }

    /// Adds the unit clause `(l)`.
    pub fn add_unit(&mut self, l: Lit) {
        self.add_clause([l]);
    }

    /// Adds `a → b` as the clause `(¬a ∨ b)`.
    pub fn add_implies(&mut self, a: Lit, b: Lit) {
        self.add_clause([!a, b]);
    }

    /// Adds `(a ∧ b) → c` as the clause `(¬a ∨ ¬b ∨ c)`.
    pub fn add_implies2(&mut self, a: Lit, b: Lit, c: Lit) {
        self.add_clause([!a, !b, c]);
    }

    /// Adds `guard → (a ≡ b)` as two ternary clauses.
    ///
    /// This is the shape of the paper's Eqs. 5, 7 and 10 after expanding the
    /// connectivity guards.
    pub fn add_guarded_iff(&mut self, guard: &[Lit], a: Lit, b: Lit) {
        let mut c1: Vec<Lit> = guard.iter().map(|&g| !g).collect();
        let mut c2 = c1.clone();
        c1.extend([!a, b]);
        c2.extend([a, !b]);
        self.add_clause(c1);
        self.add_clause(c2);
    }

    /// Adds `guard → (r ≡ ¬(a ∨ b))` (a guarded NOR definition, Eq. 7).
    pub fn add_guarded_nor(&mut self, guard: &[Lit], r: Lit, a: Lit, b: Lit) {
        let neg: Vec<Lit> = guard.iter().map(|&g| !g).collect();
        let mut c = neg.clone();
        c.extend([!a, !r]);
        self.add_clause(c);
        let mut c = neg.clone();
        c.extend([!b, !r]);
        self.add_clause(c);
        let mut c = neg;
        c.extend([a, b, r]);
        self.add_clause(c);
    }

    /// Adds `guard → (r ≡ (a ∧ ¬b))` (a guarded NIMP definition, for
    /// IMPLY-family R-ops).
    pub fn add_guarded_nimp(&mut self, guard: &[Lit], r: Lit, a: Lit, b: Lit) {
        let neg: Vec<Lit> = guard.iter().map(|&g| !g).collect();
        let mut c = neg.clone();
        c.extend([a, !r]);
        self.add_clause(c);
        let mut c = neg.clone();
        c.extend([!b, !r]);
        self.add_clause(c);
        let mut c = neg;
        c.extend([!a, b, r]);
        self.add_clause(c);
    }

    /// Adds the *at-least-one* clause `(y₁ ∨ … ∨ y_k)`.
    ///
    /// # Panics
    ///
    /// Panics if `ys` is empty.
    pub fn at_least_one(&mut self, ys: &[Lit]) {
        self.add_clause(ys.iter().copied());
    }

    /// Adds an *at-most-one* constraint over `ys` using `encoding`.
    pub fn at_most_one(&mut self, ys: &[Lit], encoding: ExactlyOne) {
        match encoding {
            ExactlyOne::Pairwise => {
                for i in 0..ys.len() {
                    for j in (i + 1)..ys.len() {
                        self.add_clause([!ys[i], !ys[j]]);
                    }
                }
            }
            ExactlyOne::Sequential => self.at_most_one_sequential(ys),
            ExactlyOne::Commander => self.at_most_one_commander(ys),
        }
    }

    /// Adds the paper's mutex μ(y₁, …, y_k) (Eq. 3): exactly one of `ys`
    /// is true.
    ///
    /// # Panics
    ///
    /// Panics if `ys` is empty.
    pub fn exactly_one(&mut self, ys: &[Lit], encoding: ExactlyOne) {
        self.at_least_one(ys);
        self.at_most_one(ys, encoding);
    }

    /// Adds an *at-most-k* cardinality constraint over `ys` (Sinz's
    /// sequential counter, `O(k·n)` clauses and auxiliaries).
    ///
    /// With `k ≥ ys.len()` the constraint is vacuous and nothing is added;
    /// with `k = 0` every literal is forced false by a unit clause. The
    /// synthesis encoder uses this to cap the number of distinct literal
    /// feeds a schedule may claim, so cell-avoidance placement provably
    /// succeeds on the remaining working cells.
    pub fn at_most_k(&mut self, ys: &[Lit], k: usize) {
        let n = ys.len();
        if n <= k {
            return;
        }
        if k == 0 {
            for &y in ys {
                self.add_unit(!y);
            }
            return;
        }
        if k == 1 {
            return self.at_most_one(ys, ExactlyOne::Sequential);
        }
        // prev[j] accumulates "at least j+1 of y₀..y_i are true".
        let mut prev: Vec<Lit> = (0..k).map(|_| self.new_lit()).collect();
        self.add_implies(ys[0], prev[0]);
        for &s in &prev[1..] {
            self.add_unit(!s);
        }
        for &y in &ys[1..n - 1] {
            let cur: Vec<Lit> = (0..k).map(|_| self.new_lit()).collect();
            self.add_implies(y, cur[0]);
            self.add_implies(prev[0], cur[0]);
            for j in 1..k {
                self.add_clause([!y, !prev[j - 1], cur[j]]);
                self.add_implies(prev[j], cur[j]);
            }
            // y_i on top of an already-full prefix overflows.
            self.add_clause([!y, !prev[k - 1]]);
            prev = cur;
        }
        self.add_clause([!ys[n - 1], !prev[k - 1]]);
    }

    fn at_most_one_sequential(&mut self, ys: &[Lit]) {
        if ys.len() <= 4 {
            return self.at_most_one(ys, ExactlyOne::Pairwise);
        }
        // Sinz sequential counter with k = 1.
        let mut prev_s = ys[0];
        for i in 1..ys.len() {
            let s = if i + 1 < ys.len() {
                self.new_lit()
            } else {
                prev_s
            };
            if i + 1 < ys.len() {
                // s_i is an OR-accumulator: y_i → s_i, s_{i-1} → s_i.
                self.add_implies(ys[i], s);
                self.add_implies(prev_s, s);
            }
            // y_i conflicts with the accumulated prefix.
            self.add_clause([!ys[i], !prev_s]);
            if i + 1 < ys.len() {
                prev_s = s;
            }
        }
    }

    fn at_most_one_commander(&mut self, ys: &[Lit]) {
        if ys.len() <= 6 {
            return self.at_most_one(ys, ExactlyOne::Pairwise);
        }
        let mut commanders = Vec::new();
        for group in ys.chunks(3) {
            let c = self.new_lit();
            // At most one inside the group.
            self.at_most_one(group, ExactlyOne::Pairwise);
            // c is true iff some group member is true.
            for &y in group {
                self.add_implies(y, c);
            }
            let mut clause: Vec<Lit> = vec![!c];
            clause.extend(group.iter().copied());
            self.add_clause(clause);
            commanders.push(c);
        }
        self.at_most_one_commander(&commanders);
    }
}

impl fmt::Display for CnfFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cnf with {} vars, {} clauses",
            self.n_vars,
            self.clauses.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SatResult, Solver};

    fn count_models(cnf: &CnfFormula, over: &[Lit]) -> usize {
        // Enumerate assignments over the given literals by brute force using
        // the solver with blocking clauses.
        let mut cnf = cnf.clone();
        let mut count = 0;
        loop {
            match Solver::new(cnf.clone()).solve() {
                SatResult::Sat(model) => {
                    count += 1;
                    let block: Vec<Lit> = over
                        .iter()
                        .map(|&l| if model.value(l) { !l } else { l })
                        .collect();
                    cnf.add_clause(block);
                }
                SatResult::Unsat => return count,
                SatResult::Unknown => panic!("solver gave up on a tiny instance"),
            }
        }
    }

    #[test]
    fn clause_dedup_and_tautology() {
        let mut cnf = CnfFormula::new();
        let a = cnf.new_lit();
        let b = cnf.new_lit();
        cnf.add_clause([a, a, b]);
        assert_eq!(cnf.clauses()[0].len(), 2);
        cnf.add_clause([a, !a]);
        assert_eq!(cnf.n_clauses(), 1, "tautologies must be dropped");
    }

    #[test]
    #[should_panic(expected = "empty clause")]
    fn empty_clause_panics() {
        let mut cnf = CnfFormula::new();
        cnf.add_clause([]);
    }

    #[test]
    fn exactly_one_encodings_agree() {
        for k in 1..=9usize {
            let mut counts = Vec::new();
            for enc in [
                ExactlyOne::Pairwise,
                ExactlyOne::Sequential,
                ExactlyOne::Commander,
            ] {
                let mut cnf = CnfFormula::new();
                let ys: Vec<Lit> = (0..k).map(|_| cnf.new_lit()).collect();
                cnf.exactly_one(&ys, enc);
                counts.push(count_models(&cnf, &ys));
            }
            assert_eq!(
                counts,
                vec![k, k, k],
                "k = {k}: each encoding must admit exactly k models"
            );
        }
    }

    #[test]
    fn at_most_k_admits_exactly_the_bounded_models() {
        fn binomial(n: usize, r: usize) -> usize {
            (0..r).fold(1, |acc, i| acc * (n - i) / (i + 1))
        }
        for n in 1..=6usize {
            for k in 0..=n {
                let mut cnf = CnfFormula::new();
                let ys: Vec<Lit> = (0..n).map(|_| cnf.new_lit()).collect();
                cnf.at_most_k(&ys, k);
                let expect: usize = (0..=k).map(|r| binomial(n, r)).sum();
                // A vacuous constraint adds no clauses at all.
                if k >= n {
                    assert_eq!(cnf.n_clauses(), 0, "n = {n}, k = {k}");
                }
                assert_eq!(
                    count_models(&cnf, &ys),
                    expect,
                    "n = {n}, k = {k}: wrong model count"
                );
            }
        }
    }

    #[test]
    fn at_most_k_zero_forces_all_false() {
        let mut cnf = CnfFormula::new();
        let ys: Vec<Lit> = (0..3).map(|_| cnf.new_lit()).collect();
        cnf.at_most_k(&ys, 0);
        match Solver::new(cnf).solve() {
            SatResult::Sat(m) => {
                for &y in &ys {
                    assert!(!m.value(y));
                }
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn guarded_iff_semantics() {
        let mut cnf = CnfFormula::new();
        let g = cnf.new_lit();
        let a = cnf.new_lit();
        let b = cnf.new_lit();
        cnf.add_guarded_iff(&[g], a, b);
        cnf.add_unit(g);
        cnf.add_unit(a);
        match Solver::new(cnf).solve() {
            SatResult::Sat(m) => assert!(m.value(b)),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn guarded_nor_semantics() {
        for (av, bv, expect) in [
            (false, false, true),
            (true, false, false),
            (true, true, false),
        ] {
            let mut cnf = CnfFormula::new();
            let g = cnf.new_lit();
            let a = cnf.new_lit();
            let b = cnf.new_lit();
            let r = cnf.new_lit();
            cnf.add_guarded_nor(&[g], r, a, b);
            cnf.add_unit(g);
            cnf.add_unit(if av { a } else { !a });
            cnf.add_unit(if bv { b } else { !b });
            match Solver::new(cnf).solve() {
                SatResult::Sat(m) => assert_eq!(m.value(r), expect, "NOR({av},{bv})"),
                other => panic!("expected SAT, got {other:?}"),
            }
        }
    }

    #[test]
    fn guarded_nimp_semantics() {
        for (av, bv, expect) in [
            (false, false, false),
            (true, false, true),
            (true, true, false),
            (false, true, false),
        ] {
            let mut cnf = CnfFormula::new();
            let g = cnf.new_lit();
            let a = cnf.new_lit();
            let b = cnf.new_lit();
            let r = cnf.new_lit();
            cnf.add_guarded_nimp(&[g], r, a, b);
            cnf.add_unit(g);
            cnf.add_unit(if av { a } else { !a });
            cnf.add_unit(if bv { b } else { !b });
            match Solver::new(cnf).solve() {
                SatResult::Sat(m) => assert_eq!(m.value(r), expect, "NIMP({av},{bv})"),
                other => panic!("expected SAT, got {other:?}"),
            }
        }
    }

    #[test]
    fn unguarded_helpers() {
        let mut cnf = CnfFormula::new();
        let a = cnf.new_lit();
        let b = cnf.new_lit();
        let c = cnf.new_lit();
        cnf.add_implies(a, b);
        cnf.add_implies2(a, b, c);
        cnf.add_unit(a);
        match Solver::new(cnf).solve() {
            SatResult::Sat(m) => {
                assert!(m.value(b));
                assert!(m.value(c));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }
}
