//! Proof emission backends for the solver's DRAT logging.
//!
//! The solver talks to a [`ProofWriter`]; two backends are provided:
//!
//! * [`DratProof`](crate::DratProof) — an in-memory step list, the backend
//!   used by [`Solver::solve_certified`](crate::Solver::solve_certified) so
//!   the proof can be handed straight to the checker in
//!   [`drat`](crate::drat);
//! * [`FileProofWriter`] — a buffered text stream in the standard DRAT
//!   format, for archiving proofs or cross-checking with `drat-trim`.
//!
//! A writer only learns that the derivation is complete through
//! [`conclude_unsat`](ProofWriter::conclude_unsat), which the solver calls
//! exclusively when it returns a genuine UNSAT. A cancelled or
//! budget-exhausted solve therefore leaves the proof without its final
//! empty clause, and the checker rejects it — an aborted run can never
//! masquerade as a completed optimality certificate.

use std::any::Any;
use std::fmt::Debug;
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::Path;

use crate::Lit;

/// Receiver for the clause additions and deletions of one solver run.
///
/// Implementations must tolerate any interleaving of calls; the solver
/// emits an addition per learnt clause, a deletion per database-reduction
/// victim, and at most one conclusion.
pub trait ProofWriter: Debug + Send {
    /// Records the addition of a derived (learnt) clause.
    fn add_clause(&mut self, lits: &[Lit]);

    /// Records the deletion of a clause from the active set.
    fn delete_clause(&mut self, lits: &[Lit]);

    /// Records the derivation of the empty clause: the formula is UNSAT.
    ///
    /// Only called when the solver actually returns
    /// [`SatResult::Unsat`](crate::SatResult::Unsat); a proof without this
    /// step never passes [`drat::check`](crate::drat::check).
    fn conclude_unsat(&mut self);

    /// Recovers the concrete writer after the solver returns it.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// Streams proof steps to a file in the textual DRAT format.
///
/// Additions are emitted as DIMACS literal lines (`1 -2 0`), deletions with
/// a `d` prefix (`d 1 -2 0`), and the conclusion as the bare terminator
/// `0`. I/O errors are sticky: the first one is kept and later writes are
/// skipped, so the caller can check [`finish`](Self::finish) once at the
/// end instead of threading results through the solver's hot path.
#[derive(Debug)]
pub struct FileProofWriter {
    out: BufWriter<File>,
    steps_written: u64,
    error: Option<io::ErrorKind>,
}

impl FileProofWriter {
    /// Creates (or truncates) the proof file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file-creation error.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self {
            out: BufWriter::new(File::create(path)?),
            steps_written: 0,
            error: None,
        })
    }

    /// Number of steps written so far.
    pub fn steps_written(&self) -> u64 {
        self.steps_written
    }

    /// Flushes the stream and reports the first sticky I/O error, if any.
    ///
    /// # Errors
    ///
    /// Returns the first write/flush error encountered over the writer's
    /// lifetime.
    pub fn finish(mut self) -> io::Result<()> {
        let flush = self.out.flush();
        if let Some(kind) = self.error {
            return Err(io::Error::from(kind));
        }
        flush
    }

    fn write_step(&mut self, prefix: &str, lits: &[Lit]) {
        if self.error.is_some() {
            return;
        }
        let mut line = String::with_capacity(prefix.len() + 6 * lits.len() + 2);
        line.push_str(prefix);
        for &l in lits {
            line.push_str(&l.to_dimacs().to_string());
            line.push(' ');
        }
        line.push_str("0\n");
        if let Err(e) = self.out.write_all(line.as_bytes()) {
            self.error = Some(e.kind());
            return;
        }
        self.steps_written += 1;
    }
}

impl ProofWriter for FileProofWriter {
    fn add_clause(&mut self, lits: &[Lit]) {
        self.write_step("", lits);
    }

    fn delete_clause(&mut self, lits: &[Lit]) {
        self.write_step("d ", lits);
    }

    fn conclude_unsat(&mut self) {
        self.write_step("", &[]);
        // The conclusion is the last step; make it durable immediately so a
        // crashing caller still leaves a checkable file behind.
        if self.error.is_none() {
            if let Err(e) = self.out.flush() {
                self.error = Some(e.kind());
            }
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}
