use std::fmt;
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Search statistics of one solver run.
///
/// These numbers back the `Vars`, `Clauses` and `T[s]` columns of the
/// paper's Table IV (the variable/clause counts come from the CNF itself,
/// the runtime from [`SolverStats::solve_time`]).
///
/// The serde representation is part of the `--stats-json` / `RunReport`
/// schema: field names are stable, and `Duration` fields serialize as
/// `{"secs": u64, "nanos": u32}` (see the golden test below).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct SolverStats {
    /// Number of decisions taken.
    pub decisions: u64,
    /// Number of unit propagations performed.
    pub propagations: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently in the database.
    pub learnt_clauses: u64,
    /// Number of learnt clauses deleted by database reductions.
    pub deleted_clauses: u64,
    /// Number of literals removed by conflict-clause minimization.
    pub minimized_literals: u64,
    /// Wall-clock time of the solve call.
    pub solve_time: Duration,
    /// Number of cancellation-token polls performed in the search loop.
    pub cancel_polls: u64,
    /// Whether the call was aborted by a tripped
    /// [`CancellationToken`](crate::CancellationToken) (as opposed to
    /// exhausting a conflict/time limit or finishing).
    pub cancelled: bool,
    /// Whether the call was aborted by an expired wall-clock
    /// [`Deadline`](crate::Deadline).
    pub deadline_expired: bool,
    /// Number of DRAT proof steps emitted (additions + deletions + the
    /// concluding empty clause). Zero when proof logging is off.
    pub proof_steps: u64,
    /// Total literals across all emitted proof steps — a proxy for the
    /// proof's size on disk.
    pub proof_literals: u64,
    /// Wall-clock time spent checking the emitted proof. Zero until a
    /// caller (e.g. certified synthesis) runs the checker and stamps it.
    pub proof_check_time: Duration,
    /// Whether the emitted proof was run through
    /// [`drat::check`](crate::drat::check) and accepted.
    pub proof_checked: bool,
    /// Number of variables removed by bounded variable elimination during
    /// inprocessing.
    pub eliminated_vars: u64,
    /// Number of clauses deleted by forward/backward subsumption during
    /// inprocessing (includes self-subsumption strengthenings that
    /// collapsed a clause onto the trail).
    pub subsumed_clauses: u64,
    /// Number of clauses shortened by self-subsuming resolution during
    /// inprocessing.
    pub strengthened_clauses: u64,
    /// Number of clauses shortened by vivification during inprocessing.
    pub vivified_clauses: u64,
}

impl SolverStats {
    /// The per-call statistics of an incremental solve, computed as the
    /// difference from a snapshot taken before the call.
    ///
    /// Monotone counters subtract; the per-call flags (`cancelled`,
    /// `deadline_expired`, `proof_checked`) are taken from `self` since the
    /// solver resets them at every call.
    pub fn delta_since(&self, earlier: &SolverStats) -> SolverStats {
        let mut d = *self;
        d.decisions -= earlier.decisions;
        d.propagations -= earlier.propagations;
        d.conflicts -= earlier.conflicts;
        d.restarts -= earlier.restarts;
        d.learnt_clauses -= earlier.learnt_clauses;
        d.deleted_clauses -= earlier.deleted_clauses;
        d.minimized_literals -= earlier.minimized_literals;
        d.solve_time -= earlier.solve_time;
        d.cancel_polls -= earlier.cancel_polls;
        d.proof_steps -= earlier.proof_steps;
        d.proof_literals -= earlier.proof_literals;
        d.proof_check_time -= earlier.proof_check_time;
        d.eliminated_vars -= earlier.eliminated_vars;
        d.subsumed_clauses -= earlier.subsumed_clauses;
        d.strengthened_clauses -= earlier.strengthened_clauses;
        d.vivified_clauses -= earlier.vivified_clauses;
        d
    }
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // One line, comma-separated `name value` pairs: bench scrapers rely
        // on this staying parseable.
        write!(
            f,
            "{} conflicts, {} decisions, {} propagations, {} restarts, \
             {} cancel-polls, cancelled {}, deadline-expired {}, \
             {} eliminated, {} subsumed, {} strengthened, {} vivified, \
             {} proof-steps, {} proof-literals, \
             checked {} in {:.3}s (+{:.3}s check)",
            self.conflicts,
            self.decisions,
            self.propagations,
            self.restarts,
            self.cancel_polls,
            self.cancelled,
            self.deadline_expired,
            self.eliminated_vars,
            self.subsumed_clauses,
            self.strengthened_clauses,
            self.vivified_clauses,
            self.proof_steps,
            self.proof_literals,
            self.proof_checked,
            self.solve_time.as_secs_f64(),
            self.proof_check_time.as_secs_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_line_with_all_counters() {
        let stats = SolverStats {
            conflicts: 7,
            cancel_polls: 3,
            proof_steps: 11,
            proof_literals: 42,
            proof_checked: true,
            eliminated_vars: 2,
            subsumed_clauses: 4,
            strengthened_clauses: 5,
            vivified_clauses: 6,
            ..Default::default()
        };
        let line = stats.to_string();
        assert!(!line.contains('\n'));
        for needle in [
            "7 conflicts",
            "3 cancel-polls",
            "cancelled false",
            "deadline-expired false",
            "2 eliminated",
            "4 subsumed",
            "5 strengthened",
            "6 vivified",
            "11 proof-steps",
            "42 proof-literals",
            "checked true",
        ] {
            assert!(line.contains(needle), "missing {needle:?} in {line:?}");
        }
    }

    #[test]
    fn delta_since_subtracts_counters_and_keeps_flags() {
        let earlier = SolverStats {
            decisions: 10,
            conflicts: 5,
            solve_time: Duration::from_millis(100),
            cancel_polls: 2,
            ..Default::default()
        };
        let later = SolverStats {
            decisions: 25,
            conflicts: 9,
            solve_time: Duration::from_millis(350),
            cancel_polls: 7,
            cancelled: true,
            ..Default::default()
        };
        let d = later.delta_since(&earlier);
        assert_eq!(d.decisions, 15);
        assert_eq!(d.conflicts, 4);
        assert_eq!(d.solve_time, Duration::from_millis(250));
        assert_eq!(d.cancel_polls, 5);
        assert!(d.cancelled, "per-call flag comes from the later snapshot");
    }

    #[test]
    fn delta_since_subtracts_inprocess_counters() {
        let earlier = SolverStats {
            eliminated_vars: 1,
            subsumed_clauses: 2,
            strengthened_clauses: 3,
            vivified_clauses: 4,
            ..Default::default()
        };
        let later = SolverStats {
            eliminated_vars: 5,
            subsumed_clauses: 7,
            strengthened_clauses: 9,
            vivified_clauses: 11,
            ..Default::default()
        };
        let d = later.delta_since(&earlier);
        assert_eq!(d.eliminated_vars, 4);
        assert_eq!(d.subsumed_clauses, 5);
        assert_eq!(d.strengthened_clauses, 6);
        assert_eq!(d.vivified_clauses, 7);
    }

    /// Golden-JSON schema stability: tooling (CI lint, EXPERIMENTS recipes)
    /// parses this exact shape. Changing a field name or the `Duration`
    /// encoding is a schema break and must bump the report schema version.
    #[test]
    fn serde_schema_is_stable() {
        let stats = SolverStats {
            decisions: 1,
            propagations: 2,
            conflicts: 3,
            restarts: 4,
            learnt_clauses: 5,
            deleted_clauses: 6,
            minimized_literals: 7,
            solve_time: Duration::new(1, 500_000_000),
            cancel_polls: 8,
            cancelled: true,
            deadline_expired: false,
            proof_steps: 9,
            proof_literals: 10,
            proof_check_time: Duration::new(0, 250),
            proof_checked: true,
            eliminated_vars: 11,
            subsumed_clauses: 12,
            strengthened_clauses: 13,
            vivified_clauses: 14,
        };

        let json = serde_json::to_string(&stats).expect("stats serialize");
        let golden = concat!(
            "{\"decisions\":1,\"propagations\":2,\"conflicts\":3,\"restarts\":4,",
            "\"learnt_clauses\":5,\"deleted_clauses\":6,\"minimized_literals\":7,",
            "\"solve_time\":{\"secs\":1,\"nanos\":500000000},\"cancel_polls\":8,",
            "\"cancelled\":true,\"deadline_expired\":false,\"proof_steps\":9,",
            "\"proof_literals\":10,\"proof_check_time\":{\"secs\":0,\"nanos\":250},",
            "\"proof_checked\":true,\"eliminated_vars\":11,\"subsumed_clauses\":12,",
            "\"strengthened_clauses\":13,\"vivified_clauses\":14}"
        );
        assert_eq!(json, golden);

        let back: SolverStats = serde_json::from_str(&json).expect("stats parse");
        assert_eq!(back, stats);
    }
}
