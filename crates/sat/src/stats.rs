use std::fmt;
use std::time::Duration;

/// Search statistics of one solver run.
///
/// These numbers back the `Vars`, `Clauses` and `T[s]` columns of the
/// paper's Table IV (the variable/clause counts come from the CNF itself,
/// the runtime from [`SolverStats::solve_time`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct SolverStats {
    /// Number of decisions taken.
    pub decisions: u64,
    /// Number of unit propagations performed.
    pub propagations: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently in the database.
    pub learnt_clauses: u64,
    /// Number of learnt clauses deleted by database reductions.
    pub deleted_clauses: u64,
    /// Number of literals removed by conflict-clause minimization.
    pub minimized_literals: u64,
    /// Wall-clock time of the solve call.
    pub solve_time: Duration,
    /// Number of cancellation-token polls performed in the search loop.
    pub cancel_polls: u64,
    /// Whether the call was aborted by a tripped
    /// [`CancellationToken`](crate::CancellationToken) (as opposed to
    /// exhausting a conflict/time limit or finishing).
    pub cancelled: bool,
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} conflicts, {} decisions, {} propagations, {} restarts in {:.3}s",
            self.conflicts,
            self.decisions,
            self.propagations,
            self.restarts,
            self.solve_time.as_secs_f64()
        )
    }
}
