use std::time::Duration;

/// Resource limits for a single [`Solver::solve`](crate::Solver::solve) call.
///
/// When a limit is exceeded the solver returns
/// [`SatResult::Unknown`](crate::SatResult::Unknown) instead of an answer.
/// This mirrors how the paper reports "≤" rows in Table IV where the
/// optimality proof (an UNSAT instance) timed out.
///
/// # Example
///
/// ```
/// use std::time::Duration;
/// use mm_sat::Budget;
///
/// let b = Budget::new()
///     .with_max_conflicts(100_000)
///     .with_max_time(Duration::from_secs(60));
/// assert_eq!(b.max_conflicts(), Some(100_000));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    max_conflicts: Option<u64>,
    max_time: Option<Duration>,
}

impl Budget {
    /// An unlimited budget: the solver runs to completion.
    pub fn new() -> Self {
        Self::default()
    }

    /// Limits the number of conflicts before giving up.
    pub fn with_max_conflicts(mut self, conflicts: u64) -> Self {
        self.max_conflicts = Some(conflicts);
        self
    }

    /// Limits the wall-clock time before giving up.
    ///
    /// The limit is checked between restarts, so the overshoot is bounded by
    /// one restart interval.
    pub fn with_max_time(mut self, time: Duration) -> Self {
        self.max_time = Some(time);
        self
    }

    /// The conflict limit, if any.
    pub fn max_conflicts(&self) -> Option<u64> {
        self.max_conflicts
    }

    /// The time limit, if any.
    pub fn max_time(&self) -> Option<Duration> {
        self.max_time
    }

    /// Whether neither limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.max_conflicts.is_none() && self.max_time.is_none()
    }
}
