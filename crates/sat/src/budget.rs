use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative cancellation handle shared between a solver call and the
/// code that launched it.
///
/// Cloning the token is cheap (an [`Arc`] bump) and every clone observes the
/// same flag. The solver polls [`is_cancelled`](Self::is_cancelled) inside
/// its propagate/decide loop — far more often than its restart-based budget
/// checks — so a [`cancel`](Self::cancel) from another thread aborts the
/// call promptly with [`SatResult::Unknown`](crate::SatResult::Unknown).
///
/// This is the primitive behind the portfolio minimality search: once one
/// budget point answers, sibling calls whose outcome is already implied by
/// the monotone budget lattice are cancelled instead of running to
/// completion.
///
/// # Example
///
/// ```
/// use mm_sat::CancellationToken;
///
/// let token = CancellationToken::new();
/// let observer = token.clone();
/// assert!(!observer.is_cancelled());
/// token.cancel();
/// assert!(observer.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancellationToken(Arc<AtomicBool>);

impl CancellationToken {
    /// A fresh, un-tripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the token. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether [`cancel`](Self::cancel) has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    /// Whether `self` and `other` share one underlying flag.
    pub fn same_token(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// A wall-clock deadline shared by every call of one run.
///
/// Unlike [`Budget::with_max_time`], which is a *per-call* duration measured
/// from the start of each solve, a deadline is an *absolute* instant: one
/// `Deadline` threaded through many sequential or parallel solver calls
/// bounds the whole minimization run. The solver polls it in the same hot
/// loop as the [`CancellationToken`], so an expired deadline aborts
/// in-flight calls promptly with
/// [`SatResult::Unknown`](crate::SatResult::Unknown), and callers can check
/// [`expired`](Self::expired) to skip launching work that could never
/// finish.
///
/// # Example
///
/// ```
/// use std::time::Duration;
/// use mm_sat::Deadline;
///
/// let d = Deadline::after(Duration::from_secs(3600));
/// assert!(!d.expired());
/// assert!(Deadline::after(Duration::ZERO).expired());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `d` from now.
    pub fn after(d: Duration) -> Self {
        Self {
            at: Instant::now().checked_add(d).unwrap_or_else(far_future),
        }
    }

    /// A deadline at an absolute instant.
    pub fn at(at: Instant) -> Self {
        Self { at }
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left before expiry (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }

    /// The absolute expiry instant.
    pub fn instant(&self) -> Instant {
        self.at
    }
}

/// An instant far enough out to never expire in practice (used when
/// `now + d` overflows the platform's `Instant` range).
fn far_future() -> Instant {
    Instant::now() + Duration::from_secs(60 * 60 * 24 * 365 * 30)
}

/// Resource limits for a single [`Solver::solve`](crate::Solver::solve) call.
///
/// When a limit is exceeded the solver returns
/// [`SatResult::Unknown`](crate::SatResult::Unknown) instead of an answer.
/// This mirrors how the paper reports "≤" rows in Table IV where the
/// optimality proof (an UNSAT instance) timed out.
///
/// A budget may also carry a [`CancellationToken`]; tripping it aborts the
/// call from outside, again yielding `Unknown`.
///
/// # Example
///
/// ```
/// use std::time::Duration;
/// use mm_sat::Budget;
///
/// let b = Budget::new()
///     .with_max_conflicts(100_000)
///     .with_max_time(Duration::from_secs(60));
/// assert_eq!(b.max_conflicts(), Some(100_000));
/// ```
#[derive(Debug, Clone)]
pub struct Budget {
    max_conflicts: Option<u64>,
    max_time: Option<Duration>,
    max_proof_steps: Option<u64>,
    deadline: Option<Deadline>,
    cancel: Option<CancellationToken>,
    inprocess: bool,
}

impl Default for Budget {
    fn default() -> Self {
        Self {
            max_conflicts: None,
            max_time: None,
            max_proof_steps: None,
            deadline: None,
            cancel: None,
            inprocess: true,
        }
    }
}

impl PartialEq for Budget {
    fn eq(&self, other: &Self) -> bool {
        let tokens_match = match (&self.cancel, &other.cancel) {
            (None, None) => true,
            (Some(a), Some(b)) => a.same_token(b),
            _ => false,
        };
        self.max_conflicts == other.max_conflicts
            && self.max_time == other.max_time
            && self.max_proof_steps == other.max_proof_steps
            && self.deadline == other.deadline
            && self.inprocess == other.inprocess
            && tokens_match
    }
}

impl Eq for Budget {}

impl Budget {
    /// An unlimited budget: the solver runs to completion.
    pub fn new() -> Self {
        Self::default()
    }

    /// Limits the number of conflicts before giving up.
    pub fn with_max_conflicts(mut self, conflicts: u64) -> Self {
        self.max_conflicts = Some(conflicts);
        self
    }

    /// Limits the wall-clock time before giving up.
    ///
    /// The limit is checked between restarts, so the overshoot is bounded by
    /// one restart interval.
    pub fn with_max_time(mut self, time: Duration) -> Self {
        self.max_time = Some(time);
        self
    }

    /// Limits the number of DRAT proof steps (clause additions + deletions)
    /// recorded before giving up. Only meaningful with proof logging on;
    /// caps the disk/memory footprint of a certification run.
    ///
    /// Like the time limit, this is checked between restarts.
    pub fn with_max_proof_steps(mut self, steps: u64) -> Self {
        self.max_proof_steps = Some(steps);
        self
    }

    /// Attaches an absolute wall-clock [`Deadline`].
    ///
    /// Unlike [`with_max_time`](Self::with_max_time) the deadline does not
    /// reset between calls, so one deadline shared by many calls bounds the
    /// whole run. It is polled in the solver's hot loop (like a
    /// [`CancellationToken`]), so expiry aborts promptly rather than waiting
    /// for a restart boundary.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a cancellation token; tripping it aborts the call.
    pub fn with_cancellation(mut self, token: CancellationToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Enables or disables formula inprocessing (bounded variable
    /// elimination, subsumption, vivification) for calls made under this
    /// budget. On by default; the `--no-inprocess` CLI flag turns it off.
    ///
    /// Inprocessing never changes a verdict — it only rewrites the clause
    /// database between restarts — so this knob exists for differential
    /// testing and for isolating the effect when benchmarking.
    pub fn with_inprocess(mut self, enabled: bool) -> Self {
        self.inprocess = enabled;
        self
    }

    /// The conflict limit, if any.
    pub fn max_conflicts(&self) -> Option<u64> {
        self.max_conflicts
    }

    /// The time limit, if any.
    pub fn max_time(&self) -> Option<Duration> {
        self.max_time
    }

    /// The proof-step limit, if any.
    pub fn max_proof_steps(&self) -> Option<u64> {
        self.max_proof_steps
    }

    /// The attached deadline, if any.
    pub fn deadline(&self) -> Option<Deadline> {
        self.deadline
    }

    /// The attached cancellation token, if any.
    pub fn cancellation(&self) -> Option<&CancellationToken> {
        self.cancel.as_ref()
    }

    /// Whether inprocessing is enabled for calls under this budget.
    pub fn inprocess(&self) -> bool {
        self.inprocess
    }

    /// Whether no limit is set and no cancellation token is attached.
    pub fn is_unlimited(&self) -> bool {
        self.max_conflicts.is_none()
            && self.max_time.is_none()
            && self.max_proof_steps.is_none()
            && self.deadline.is_none()
            && self.cancel.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_clones_share_state() {
        let t = CancellationToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled());
        c.cancel();
        assert!(t.is_cancelled());
        assert!(t.same_token(&c));
        assert!(!t.same_token(&CancellationToken::new()));
    }

    #[test]
    fn budget_equality_is_token_identity() {
        let t = CancellationToken::new();
        let a = Budget::new().with_cancellation(t.clone());
        let b = Budget::new().with_cancellation(t);
        assert_eq!(a, b);
        let c = Budget::new().with_cancellation(CancellationToken::new());
        assert_ne!(a, c);
        assert_eq!(Budget::new(), Budget::new());
        assert!(!a.is_unlimited());
        assert!(Budget::new().is_unlimited());
    }

    #[test]
    fn deadline_expiry_and_remaining() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.remaining() > Duration::from_secs(3000));

        let past = Deadline::after(Duration::ZERO);
        assert!(past.expired());
        assert_eq!(past.remaining(), Duration::ZERO);

        let at = Instant::now();
        assert_eq!(Deadline::at(at).instant(), at);

        // Absurd durations saturate instead of panicking.
        let far = Deadline::after(Duration::from_secs(u64::MAX));
        assert!(!far.expired());
    }

    #[test]
    fn inprocess_knob_defaults_on_and_round_trips() {
        assert!(Budget::new().inprocess());
        let off = Budget::new().with_inprocess(false);
        assert!(!off.inprocess());
        assert!(off.is_unlimited(), "the knob is not a resource limit");
        assert_ne!(off, Budget::new());
        assert_eq!(off.clone(), off);
        assert!(off.with_inprocess(true).inprocess());
    }

    #[test]
    fn budget_deadline_round_trips() {
        let d = Deadline::after(Duration::from_secs(10));
        let b = Budget::new().with_deadline(d);
        assert_eq!(b.deadline(), Some(d));
        assert!(!b.is_unlimited());
        assert_eq!(b.clone(), b);
        assert_ne!(b, Budget::new());
    }
}
