use std::error::Error;
use std::fmt;

/// Errors produced by the SAT toolkit (DIMACS and DRAT text parsing).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SatError {
    /// The DIMACS-style input (a formula or a DRAT proof) could not be
    /// parsed.
    ParseDimacs {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Explanation of what went wrong.
        reason: String,
    },
}

impl fmt::Display for SatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ParseDimacs { line, reason } => {
                write!(f, "invalid DIMACS input at line {line}: {reason}")
            }
        }
    }
}

impl Error for SatError {}
