use std::error::Error;
use std::fmt;

/// Errors produced by the SAT toolkit (currently only DIMACS parsing).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SatError {
    /// The DIMACS input could not be parsed.
    ParseDimacs {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Explanation of what went wrong.
        reason: String,
    },
}

impl fmt::Display for SatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ParseDimacs { line, reason } => {
                write!(f, "invalid DIMACS input at line {line}: {reason}")
            }
        }
    }
}

impl Error for SatError {}
