//! Learnt-clause sharing between portfolio workers.
//!
//! Parallel portfolio solvers (ManySAT, Glucose-syrup) gain most of their
//! cooperative speedup by exchanging short, low-LBD learnt clauses between
//! workers attacking the same formula. [`ClauseBus`] is the in-tree
//! equivalent: an append-only log of exported clauses behind a mutex, with
//! a per-solver cursor so each importer sees every foreign clause exactly
//! once.
//!
//! Soundness rests on one invariant that the *caller* must uphold: every
//! solver attached to one bus must have been built from the **same CNF**
//! (the ladder workers all clone one shared base encoding). A learnt
//! clause is a logical consequence of that formula, so importing it into a
//! sibling preserves satisfiability. The bus itself never inspects clause
//! content.
//!
//! Proof logging and clause import are mutually exclusive: an imported
//! clause is not RUP with respect to the importer's own derivation, so a
//! solver with a [`ProofWriter`](crate::ProofWriter) installed silently
//! skips imports (see `Solver::with_clause_bus`).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::Lit;

/// A shared, append-only log of exported learnt clauses.
///
/// Cloning is cheap (an `Arc` bump); all clones refer to the same log.
#[derive(Debug, Clone)]
pub struct ClauseBus {
    inner: Arc<BusInner>,
}

#[derive(Debug)]
struct BusInner {
    /// Export quality filter: only clauses with LBD at or below this are
    /// accepted by the exporting solver.
    max_lbd: u32,
    /// The shared log as `(owner, clause)` pairs. Entries are only ever
    /// appended, so a cursor into the log stays valid forever; the owner
    /// tag lets an importer skip its own publications.
    log: Mutex<Vec<(usize, Vec<Lit>)>>,
    next_owner: AtomicUsize,
    exported: AtomicU64,
    imported: AtomicU64,
}

impl ClauseBus {
    /// Creates an empty bus accepting exports with LBD ≤ `max_lbd`.
    pub fn new(max_lbd: u32) -> Self {
        Self {
            inner: Arc::new(BusInner {
                max_lbd,
                log: Mutex::new(Vec::new()),
                next_owner: AtomicUsize::new(0),
                exported: AtomicU64::new(0),
                imported: AtomicU64::new(0),
            }),
        }
    }

    /// The LBD export threshold this bus was created with.
    pub fn max_lbd(&self) -> u32 {
        self.inner.max_lbd
    }

    /// Hands out a fresh owner id for a solver joining the bus.
    pub fn register(&self) -> usize {
        self.inner.next_owner.fetch_add(1, Ordering::Relaxed)
    }

    /// Number of clauses published so far.
    pub fn len(&self) -> usize {
        self.inner.log.lock().expect("clause bus poisoned").len()
    }

    /// Whether no clause has been published yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Publishes a clause, tagged with the publisher's owner id.
    pub fn publish(&self, owner: usize, lits: &[Lit]) {
        self.inner
            .log
            .lock()
            .expect("clause bus poisoned")
            .push((owner, lits.to_vec()));
        self.inner.exported.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies out every clause published after `cursor` by solvers other
    /// than `owner`, and advances the cursor to the end of the log.
    pub fn collect_since(&self, owner: usize, cursor: &mut usize) -> Vec<Vec<Lit>> {
        let log = self.inner.log.lock().expect("clause bus poisoned");
        let fresh = log[(*cursor).min(log.len())..]
            .iter()
            .filter(|(by, _)| *by != owner)
            .map(|(_, lits)| lits.clone())
            .collect();
        *cursor = log.len();
        fresh
    }

    /// Records that an importer consumed `n` clauses (for telemetry).
    pub fn note_imported(&self, n: u64) {
        self.inner.imported.fetch_add(n, Ordering::Relaxed);
    }

    /// Total clauses published across all solvers.
    pub fn exported(&self) -> u64 {
        self.inner.exported.load(Ordering::Relaxed)
    }

    /// Total clause imports consumed across all solvers.
    pub fn imported(&self) -> u64 {
        self.inner.imported.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    fn lit(i: u32) -> Lit {
        Var::from_index(i).positive()
    }

    #[test]
    fn cursor_sees_each_foreign_clause_exactly_once() {
        let bus = ClauseBus::new(4);
        assert!(bus.is_empty());
        let me = bus.register();
        let peer = bus.register();
        assert_ne!(me, peer);
        bus.publish(peer, &[lit(0), lit(1)]);
        bus.publish(peer, &[lit(2)]);

        let mut cursor = 0;
        let first = bus.collect_since(me, &mut cursor);
        assert_eq!(first, vec![vec![lit(0), lit(1)], vec![lit(2)]]);
        assert!(bus.collect_since(me, &mut cursor).is_empty());

        bus.publish(peer, &[lit(3)]);
        assert_eq!(bus.collect_since(me, &mut cursor), vec![vec![lit(3)]]);
        assert_eq!(bus.exported(), 3);
    }

    #[test]
    fn own_publications_are_not_reimported() {
        let bus = ClauseBus::new(4);
        let me = bus.register();
        let peer = bus.register();
        bus.publish(me, &[lit(0)]);
        bus.publish(peer, &[lit(1)]);
        bus.publish(me, &[lit(2)]);
        let mut cursor = 0;
        assert_eq!(bus.collect_since(me, &mut cursor), vec![vec![lit(1)]]);
        assert_eq!(cursor, 3, "cursor passes over skipped own clauses");
    }

    #[test]
    fn clones_share_one_log() {
        let bus = ClauseBus::new(4);
        let other = bus.clone();
        let peer = other.register();
        other.publish(peer, &[lit(7)]);
        let mut cursor = 0;
        assert_eq!(bus.collect_since(peer + 1, &mut cursor), vec![vec![lit(7)]]);
        other.note_imported(1);
        assert_eq!(bus.imported(), 1);
    }

    #[test]
    fn stale_cursor_is_clamped() {
        let bus = ClauseBus::new(4);
        bus.publish(0, &[lit(0)]);
        let mut cursor = 100;
        assert!(bus.collect_since(1, &mut cursor).is_empty());
        assert_eq!(cursor, 1);
    }
}
