//! A from-scratch CDCL SAT solver and CNF construction toolkit.
//!
//! The synthesis procedure of *Optimal Synthesis of Memristive Mixed-Mode
//! Circuits* (DATE 2025) reduces circuit design to Boolean satisfiability;
//! the paper ran the competition solver SLIME 5. This crate is the
//! equivalent substrate built from scratch: a complete conflict-driven
//! clause-learning solver with
//!
//! * two-watched-literal propagation with a dedicated binary-clause layer,
//! * first-UIP conflict analysis with recursive clause minimization,
//! * exponential VSIDS decision ordering with phase saving,
//! * Luby-sequence restarts,
//! * LBD-based learnt-clause database reduction, and
//! * conflict/time budgets that let callers bound optimality proofs
//!   (returning [`SatResult::Unknown`] instead of running for the tens of
//!   hours the paper reports for its largest UNSAT instances), and
//! * DRAT proof logging ([`ProofWriter`]) with an in-tree backward checker
//!   ([`drat`]) so UNSAT answers — the substance of every optimality claim —
//!   are independently certified rather than trusted.
//!
//! CNF construction helpers live on [`CnfFormula`], including the three
//! *exactly-one* encodings ([`ExactlyOne`]) used to study the paper's
//! mutex constraint μ (Eq. 3). DIMACS import/export is provided by the
//! [`dimacs`] module for cross-checking against external solvers.
//!
//! # Example
//!
//! ```
//! use mm_sat::{CnfFormula, Lit, SatResult, Solver};
//!
//! let mut cnf = CnfFormula::new();
//! let a = cnf.new_lit();
//! let b = cnf.new_lit();
//! cnf.add_clause([a, b]);
//! cnf.add_clause([!a, b]);
//! cnf.add_clause([a, !b]);
//!
//! match Solver::new(cnf).solve() {
//!     SatResult::Sat(model) => {
//!         assert!(model.value(a) && model.value(b));
//!     }
//!     other => panic!("expected SAT, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod cnf;
mod error;
mod lit;
mod model;
mod proof;
mod share;
mod solver;
mod stats;

pub mod dimacs;
pub mod drat;

pub use budget::{Budget, CancellationToken, Deadline};
pub use cnf::{CnfFormula, ExactlyOne};
pub use drat::DratProof;
pub use error::SatError;
pub use lit::{Lit, Var};
pub use model::Model;
pub use proof::{FileProofWriter, ProofWriter};
pub use share::ClauseBus;
pub use solver::{Diversity, PhaseInit, RestartPolicy, SatResult, Solver};
pub use stats::SolverStats;
