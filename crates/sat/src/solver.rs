// Index loops below are deliberate: they sidestep aliasing between the
// iterated buffer and `&mut self` calls inside the loop bodies.
#![allow(clippy::needless_range_loop)]

mod inprocess;

use std::time::Instant;

use mm_telemetry::Telemetry;

use crate::drat::DratProof;
use crate::share::ClauseBus;
use crate::{Budget, CnfFormula, Lit, Model, ProofWriter, SolverStats, Var};

/// Clauses longer than this are never exported to a [`ClauseBus`], no
/// matter how good their LBD: long clauses are expensive for importers to
/// watch and rarely prune anything.
const EXPORT_MAX_LEN: usize = 32;

/// Conflicts accumulated before the first inprocessing pass fires, and the
/// base of the geometric growth between passes. Small one-shot solves never
/// reach it and pay nothing; long warm-ladder solvers cross it on the hard
/// rungs where database reduction pays off most.
const INPROCESS_FIRST_AT: u64 = 1_000;

/// How the restart interval grows with the restart index. Part of the
/// portfolio diversification story: workers on different policies explore
/// genuinely different trajectories and feed the clause bus complementary
/// glue clauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RestartPolicy {
    /// Luby sequence times a fixed base (the classic default).
    #[default]
    Luby,
    /// Geometric growth: `base * 1.2^idx`, favouring longer and longer
    /// uninterrupted runs.
    Geometric,
}

/// Initial phase-saving polarity assigned to every variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PhaseInit {
    /// All variables start false (the classic default).
    #[default]
    AllFalse,
    /// All variables start true.
    AllTrue,
    /// Seed-derived pseudo-random polarity per variable.
    Random,
}

/// A portfolio worker's diversification profile: seed-derived activity
/// jitter, initial phase polarity, and restart policy.
///
/// [`Diversity::for_worker`] maps a worker index to a deterministic
/// profile; index 0 is always [`Diversity::canonical`] (byte-identical to
/// an undiversified solver), so single-worker runs behave exactly like the
/// serial solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Diversity {
    /// Seed for tie-breaking VSIDS jitter and random phases; 0 = none.
    pub seed: u64,
    /// Initial phase-saving polarity.
    pub phase: PhaseInit,
    /// Restart interval policy.
    pub restarts: RestartPolicy,
}

impl Diversity {
    /// The undiversified profile: no jitter, all-false phases, Luby
    /// restarts. A solver with this profile is byte-identical to one that
    /// never called [`Solver::with_diversity`].
    pub fn canonical() -> Self {
        Self {
            seed: 0,
            phase: PhaseInit::AllFalse,
            restarts: RestartPolicy::Luby,
        }
    }

    /// Deterministic profile for portfolio worker `idx`.
    ///
    /// Worker 0 is canonical; higher indices cycle through phase and
    /// restart-policy combinations with a per-worker jitter seed, so no
    /// two of the first six workers share a profile.
    pub fn for_worker(idx: usize) -> Self {
        if idx == 0 {
            return Self::canonical();
        }
        Self {
            seed: idx as u64,
            phase: match idx % 3 {
                0 => PhaseInit::AllFalse,
                1 => PhaseInit::AllTrue,
                _ => PhaseInit::Random,
            },
            restarts: if idx % 2 == 1 {
                RestartPolicy::Geometric
            } else {
                RestartPolicy::Luby
            },
        }
    }
}

/// One step of a xorshift64 PRNG (for diversification only — never on the
/// solving hot path).
fn xorshift64(mut s: u64) -> u64 {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    s
}

/// Outcome of a [`Solver::solve`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// The formula is satisfiable; a witness assignment is attached.
    Sat(Model),
    /// The formula is unsatisfiable.
    Unsat,
    /// The solver exhausted its [`Budget`] before reaching an answer.
    Unknown,
}

impl SatResult {
    /// The model, if the result is [`SatResult::Sat`].
    pub fn model(&self) -> Option<&Model> {
        match self {
            Self::Sat(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the result is [`SatResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, Self::Sat(_))
    }

    /// Whether the result is [`SatResult::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, Self::Unsat)
    }
}

/// Why a variable is assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reason {
    /// A decision or a top-level fact.
    Decision,
    /// Implied by the clause with this index.
    Clause(u32),
    /// Implied by a binary clause whose other literal (now false) is given.
    Binary(Lit),
}

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    deleted: bool,
    activity: f32,
    lbd: u32,
}

#[derive(Debug, Clone, Copy)]
struct Watch {
    clause: u32,
    blocker: Lit,
}

const UNASSIGNED: i8 = 0;

/// A conflict-driven clause-learning (CDCL) SAT solver.
///
/// Construct with a finished [`CnfFormula`] and call [`solve`](Self::solve)
/// or [`solve_with_budget`](Self::solve_with_budget) for a one-shot answer,
/// or keep the solver alive and call
/// [`solve_under_assumptions`](Self::solve_under_assumptions) repeatedly:
/// each call reuses the clause database, VSIDS activities and saved phases
/// accumulated by the previous ones. Because assumptions are enqueued as
/// *decisions* (never resolved as clauses), every learnt clause is a
/// consequence of the base formula alone and stays valid across calls.
///
/// # Example
///
/// ```
/// use mm_sat::{CnfFormula, SatResult, Solver};
///
/// let mut cnf = CnfFormula::new();
/// let a = cnf.new_lit();
/// cnf.add_clause([a]);
/// cnf.add_clause([!a]);
/// assert_eq!(Solver::new(cnf).solve(), SatResult::Unsat);
/// ```
#[derive(Debug)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// `bin_implications[l.code()]` lists the partner literals of all binary
    /// clauses containing `l`; traversed when `l` becomes false (each entry
    /// is then implied).
    bin_implications: Vec<Vec<Lit>>,
    /// `watches[l.code()]` lists clauses currently watching literal `l`;
    /// traversed when `l` becomes false.
    watches: Vec<Vec<Watch>>,
    assign: Vec<i8>,
    level: Vec<u32>,
    reason: Vec<Reason>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    heap: VarHeap,
    saved_phase: Vec<bool>,
    seen: Vec<bool>,
    analyze_stack: Vec<Lit>,
    analyze_clear: Vec<Var>,
    cla_inc: f32,
    ok: bool,
    stats: SolverStats,
    n_vars: usize,
    minimize_enabled: bool,
    /// DRAT log sink; `None` keeps the hot path to a single well-predicted
    /// branch per learn/delete site.
    proof: Option<Box<dyn ProofWriter>>,
    /// Telemetry handle; disabled by default, same single-branch discipline
    /// as `proof`. Counter deltas are emitted at the cancel-poll cadence.
    telemetry: Telemetry,
    /// Counter values already emitted to telemetry, so each emission sends
    /// only the delta: (conflicts, propagations, decisions, restarts).
    tel_emitted: (u64, u64, u64, u64),
    /// Portfolio clause-sharing channel; `None` keeps the learn site to a
    /// single branch.
    bus: Option<ClauseBus>,
    /// This solver's owner id on the bus (so imports skip own exports).
    bus_id: usize,
    /// Position in the bus log up to which this solver has imported.
    bus_cursor: usize,
    /// Clauses imported from / exported to the bus by this solver.
    imported: u64,
    exported: u64,
    /// Share-counter values already emitted to telemetry (imported, exported).
    tel_shared: (u64, u64),
    /// Inprocess-counter values already emitted to telemetry
    /// (eliminated, subsumed+strengthened, vivified).
    tel_inprocess: (u64, u64, u64),
    /// Failed-assumption set of the last UNSAT-under-assumptions call.
    failed: Vec<Lit>,
    /// Variables that bounded variable elimination must never touch:
    /// assumption/guard variables whose semantics outlive any single call.
    frozen: Vec<bool>,
    /// Variables removed by bounded variable elimination. Never decided,
    /// never imported; their model values are reconstructed from
    /// `elim_stack` in `extract_model`.
    eliminated: Vec<bool>,
    /// Elimination records, in elimination order: the pivot literal and
    /// every clause (both polarities) that mentioned it at the time.
    /// Replayed in reverse to extend a model over eliminated variables.
    elim_stack: Vec<(Lit, Vec<Vec<Lit>>)>,
    /// Cumulative-conflict threshold for the next inprocessing pass.
    next_inprocess: u64,
    /// Current gap between passes; grows geometrically so inprocessing
    /// stays a vanishing fraction of total effort.
    inprocess_interval: u64,
    /// Trail prefix whose implied level-0 literals have already been
    /// emitted to the DRAT log as unit additions (see `log_level0_units`).
    l0_units_logged: usize,
    /// Restart interval policy (diversification).
    restart_policy: RestartPolicy,
}

impl Solver {
    /// Builds a solver from a formula.
    pub fn new(cnf: CnfFormula) -> Self {
        let n = cnf.n_vars() as usize;
        let mut solver = Self {
            clauses: Vec::new(),
            bin_implications: vec![Vec::new(); 2 * n],
            watches: vec![Vec::new(); 2 * n],
            assign: vec![UNASSIGNED; n],
            level: vec![0; n],
            reason: vec![Reason::Decision; n],
            trail: Vec::with_capacity(n),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: vec![0.0; n],
            var_inc: 1.0,
            heap: VarHeap::new(n),
            saved_phase: vec![false; n],
            seen: vec![false; n],
            analyze_stack: Vec::new(),
            analyze_clear: Vec::new(),
            cla_inc: 1.0,
            ok: true,
            stats: SolverStats::default(),
            n_vars: n,
            minimize_enabled: true,
            proof: None,
            telemetry: Telemetry::disabled(),
            tel_emitted: (0, 0, 0, 0),
            bus: None,
            bus_id: 0,
            bus_cursor: 0,
            imported: 0,
            exported: 0,
            tel_shared: (0, 0),
            tel_inprocess: (0, 0, 0),
            failed: Vec::new(),
            frozen: vec![false; n],
            eliminated: vec![false; n],
            elim_stack: Vec::new(),
            next_inprocess: INPROCESS_FIRST_AT,
            inprocess_interval: INPROCESS_FIRST_AT,
            l0_units_logged: 0,
            restart_policy: RestartPolicy::default(),
        };
        for clause in cnf.clauses() {
            solver.add_original_clause(clause);
            if !solver.ok {
                break;
            }
        }
        solver
    }

    /// Disables (or re-enables) learnt-clause minimization.
    ///
    /// Minimization is on by default; switching it off exists for ablation
    /// measurements of the solver itself.
    pub fn set_minimize(&mut self, enabled: bool) {
        self.minimize_enabled = enabled;
    }

    /// Installs a DRAT proof sink. Every learnt clause, every database
    /// deletion, and (on UNSAT) the final empty clause are forwarded to it.
    ///
    /// With no writer installed the logging sites compile down to one
    /// `Option` check each; see the `certify_overhead` bench.
    pub fn with_proof_writer(mut self, writer: Box<dyn ProofWriter>) -> Self {
        self.proof = Some(writer);
        self
    }

    /// Installs a telemetry handle. The search loop then emits
    /// `solver.conflicts` / `solver.propagations` / `solver.decisions` /
    /// `solver.restarts` counter *deltas* at the existing cancel-poll cadence
    /// (every `CANCEL_POLL_INTERVAL` loop rounds), plus one final delta when
    /// the solve returns — so counter totals always equal [`SolverStats`].
    ///
    /// A disabled handle keeps the loop byte-for-byte on its old path: the
    /// poll guard stays false and no emission code runs.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Attaches a shared clause bus for portfolio clause exchange.
    ///
    /// Learnt clauses with LBD ≤ the bus threshold and at most
    /// `EXPORT_MAX_LEN` literals are published; clauses published by other
    /// solvers are imported at call entry and at every restart. All solvers
    /// on one bus **must** be built from the same [`CnfFormula`] — a learnt
    /// clause is only a consequence of *that* formula.
    ///
    /// Importing is refused while a [`ProofWriter`] is installed: a foreign
    /// clause is not RUP with respect to this solver's own derivation and
    /// would make the DRAT log uncheckable. Exporting stays enabled (it
    /// does not affect the exporter's proof).
    pub fn with_clause_bus(mut self, bus: ClauseBus) -> Self {
        // Cursor starts at 0 so a late-constructed worker also benefits
        // from clauses published before it joined.
        self.bus_cursor = 0;
        self.bus_id = bus.register();
        self.bus = Some(bus);
        self
    }

    /// Applies a portfolio diversification profile: restart policy, initial
    /// phase polarity, and (for non-zero seeds) a tiny deterministic VSIDS
    /// tie-breaking jitter. [`Diversity::canonical`] is a no-op.
    ///
    /// Diversification only perturbs *search order*; verdicts, models'
    /// validity, and proof checkability are unaffected.
    pub fn with_diversity(mut self, d: Diversity) -> Self {
        self.restart_policy = d.restarts;
        let mut s = d.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        match d.phase {
            PhaseInit::AllFalse => {}
            PhaseInit::AllTrue => self.saved_phase.iter_mut().for_each(|p| *p = true),
            PhaseInit::Random => {
                for p in &mut self.saved_phase {
                    s = xorshift64(s);
                    *p = s & 1 == 1;
                }
            }
        }
        if d.seed != 0 {
            // Sub-nanoscale jitter: breaks VSIDS ties between never-bumped
            // variables without ever outweighing a real activity bump.
            for v in 0..self.n_vars {
                s = xorshift64(s);
                self.activity[v] = (s >> 11) as f64 * 1e-9 / (1u64 << 53) as f64;
            }
            for v in 0..self.n_vars as u32 {
                self.heap.update(Var::from_index(v), &self.activity);
            }
        }
        self
    }

    /// Marks variables that inprocessing must never eliminate.
    ///
    /// Call this before the first solve for every variable whose meaning
    /// outlives a single call: assumption/guard variables of an incremental
    /// ladder, variables a caller will inject clauses over later. The
    /// current call's assumptions are frozen automatically as a backstop,
    /// but a *later* call's assumptions are not — freeze them up front.
    ///
    /// # Panics
    ///
    /// Panics if a listed variable has already been eliminated (freezing
    /// would come too late to be honoured).
    pub fn freeze_vars<I: IntoIterator<Item = Var>>(&mut self, vars: I) {
        for v in vars {
            let i = v.index() as usize;
            assert!(
                !self.eliminated[i],
                "freeze_vars: variable {i} was already eliminated; freeze before solving"
            );
            self.frozen[i] = true;
        }
    }

    /// Whether inprocessing has eliminated `v` (its model value is
    /// reconstructed rather than searched).
    pub fn is_eliminated(&self, v: Var) -> bool {
        self.eliminated[v.index() as usize]
    }

    /// Cumulative statistics across every call made on this solver.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Clauses imported from the attached bus so far.
    pub fn imported_clauses(&self) -> u64 {
        self.imported
    }

    /// Clauses exported to the attached bus so far.
    pub fn exported_clauses(&self) -> u64 {
        self.exported
    }

    /// The subset of the most recent call's assumptions that the solver
    /// proved incompatible with the formula.
    ///
    /// Populated when [`solve_under_assumptions`](Self::solve_under_assumptions)
    /// returns [`SatResult::Unsat`]; empty when the formula is
    /// unsatisfiable on its own (the empty subset already suffices).
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.failed
    }

    /// Adds a clause between solve calls.
    ///
    /// The clause is simplified against the top-level assignment and takes
    /// effect on the next call. Must not be combined with proof logging:
    /// an externally injected clause is not RUP with respect to this
    /// solver's derivation, so the DRAT log would no longer check.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        debug_assert!(!lits.is_empty());
        debug_assert!(
            self.proof.is_none(),
            "post-solve add_clause would poison the DRAT log"
        );
        // Hard assert (like the assumptions path): in release builds a
        // clause over an eliminated variable would be silently unsound —
        // the variable is never decided and extract_model reconstructs it
        // from stale elimination records, so SAT could violate the clause.
        assert!(
            lits.iter()
                .all(|l| !self.eliminated[l.var().index() as usize]),
            "post-solve add_clause over an eliminated variable; freeze it first"
        );
        self.backtrack_to(0);
        self.add_simplified_clause(lits, false);
    }

    /// Solves under `assumptions`, reusing all state learned by earlier
    /// calls on this solver.
    ///
    /// Assumptions are enqueued as the first decisions — assumption `i`
    /// owns decision level `i + 1` — so conflict analysis treats them like
    /// any other decision and learnt clauses never depend on them as
    /// clauses. On [`SatResult::Sat`] the model satisfies every assumption;
    /// on [`SatResult::Unsat`],
    /// [`failed_assumptions`](Self::failed_assumptions) names a subset of
    /// `assumptions` that is already incompatible with the formula.
    ///
    /// Per-call [`Budget`] limits (conflicts, time) are measured from this
    /// call's entry, and the `cancelled` / `deadline_expired` flags in
    /// [`stats`](Self::stats) describe the latest call; all other counters
    /// accumulate across calls.
    ///
    /// A DRAT proof is concluded only when an UNSAT answer is reached with
    /// *no* assumptions — "UNSAT under assumptions" is not refutation of
    /// the formula, so certified optimality ladders must fall back to
    /// one-shot solves.
    pub fn solve_under_assumptions(&mut self, assumptions: &[Lit], budget: Budget) -> SatResult {
        let start = Instant::now();
        self.stats.cancelled = false;
        self.stats.deadline_expired = false;
        self.failed.clear();
        // Backstop freeze: this call's assumptions must survive elimination.
        // (Future calls may assume *other* variables — long-lived callers
        // freeze their full guard set up front via `freeze_vars`.)
        for &a in assumptions {
            let v = a.var().index() as usize;
            assert!(
                !self.eliminated[v],
                "assumption over eliminated variable {v}; freeze_vars before the first solve"
            );
            self.frozen[v] = true;
        }
        self.backtrack_to(0);
        self.import_from_bus();
        self.maybe_inprocess(&budget);
        let result = self.search(assumptions, budget, start);
        self.backtrack_to(0);
        self.emit_counter_deltas();
        if result.is_unsat() && assumptions.is_empty() {
            if let Some(w) = self.proof.as_mut() {
                w.conclude_unsat();
                self.stats.proof_steps += 1;
            }
        }
        self.stats.solve_time += start.elapsed();
        result
    }

    /// Solves the formula to completion (no budget).
    pub fn solve(self) -> SatResult {
        self.solve_with_budget(Budget::new()).0
    }

    /// Solves under a [`Budget`], also returning the search statistics.
    pub fn solve_with_budget(self, budget: Budget) -> (SatResult, SolverStats) {
        let (result, stats, _) = self.solve_logged(budget);
        (result, stats)
    }

    /// Solves under a [`Budget`], returning the proof writer installed via
    /// [`with_proof_writer`](Self::with_proof_writer) (if any) alongside the
    /// result and statistics.
    ///
    /// [`ProofWriter::conclude_unsat`] is invoked exactly when the result is
    /// [`SatResult::Unsat`] — a cancelled or budget-exhausted run hands back
    /// an unconcluded writer whose proof the checker will reject.
    pub fn solve_logged(
        mut self,
        budget: Budget,
    ) -> (SatResult, SolverStats, Option<Box<dyn ProofWriter>>) {
        // Thin wrapper over the reusable path: an empty assumption set
        // makes `solve_under_assumptions` behave exactly like the historic
        // one-shot call (solve_time starts at zero, so `+=` is `=`).
        let result = self.solve_under_assumptions(&[], budget);
        (result, self.stats, self.proof)
    }

    /// Solves with an in-memory [`DratProof`] log, for certification.
    ///
    /// The returned proof is `Some` whenever logging ran (it always does
    /// here) and is concluded only on a genuine UNSAT; pass it to
    /// [`drat::check`](crate::drat::check) together with the original
    /// formula to certify the answer.
    pub fn solve_certified(
        mut self,
        budget: Budget,
    ) -> (SatResult, SolverStats, Option<DratProof>) {
        if self.proof.is_none() {
            self.proof = Some(Box::<DratProof>::default());
        }
        let (result, stats, writer) = self.solve_logged(budget);
        let proof = writer
            .and_then(|w| w.into_any().downcast::<DratProof>().ok())
            .map(|boxed| *boxed);
        (result, stats, proof)
    }

    /// Sends counter deltas accumulated since the previous emission. No-op
    /// (one branch) when telemetry is disabled.
    fn emit_counter_deltas(&mut self) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let s = self.stats;
        self.telemetry
            .counter("solver.conflicts", s.conflicts - self.tel_emitted.0);
        self.telemetry
            .counter("solver.propagations", s.propagations - self.tel_emitted.1);
        self.telemetry
            .counter("solver.decisions", s.decisions - self.tel_emitted.2);
        self.telemetry
            .counter("solver.restarts", s.restarts - self.tel_emitted.3);
        self.tel_emitted = (s.conflicts, s.propagations, s.decisions, s.restarts);
        // Share counters are zero without a bus; emit only real deltas so
        // bus-less runs produce the same event stream as before.
        let (di, de) = (
            self.imported - self.tel_shared.0,
            self.exported - self.tel_shared.1,
        );
        if di > 0 {
            self.telemetry.counter("solver.imported_clauses", di);
        }
        if de > 0 {
            self.telemetry.counter("solver.exported_clauses", de);
        }
        self.tel_shared = (self.imported, self.exported);
        // Inprocess counters follow the same delta-when-nonzero discipline,
        // so runs that never inprocess produce the exact old event stream.
        // `subsumed` folds in self-subsumption strengthenings: both are
        // products of the same occurrence-list machinery.
        let ie = s.eliminated_vars - self.tel_inprocess.0;
        let is = s.subsumed_clauses + s.strengthened_clauses - self.tel_inprocess.1;
        let iv = s.vivified_clauses - self.tel_inprocess.2;
        if ie > 0 {
            self.telemetry.counter("solver.inprocess.eliminated", ie);
        }
        if is > 0 {
            self.telemetry.counter("solver.inprocess.subsumed", is);
        }
        if iv > 0 {
            self.telemetry.counter("solver.inprocess.vivified", iv);
        }
        self.tel_inprocess = (
            s.eliminated_vars,
            s.subsumed_clauses + s.strengthened_clauses,
            s.vivified_clauses,
        );
    }

    #[inline]
    fn proof_add(&mut self, lits: &[Lit]) {
        if let Some(w) = self.proof.as_mut() {
            w.add_clause(lits);
            self.stats.proof_steps += 1;
            self.stats.proof_literals += lits.len() as u64;
        }
    }

    #[inline]
    fn proof_delete(&mut self, lits: &[Lit]) {
        if let Some(w) = self.proof.as_mut() {
            w.delete_clause(lits);
            self.stats.proof_steps += 1;
            self.stats.proof_literals += lits.len() as u64;
        }
    }

    fn add_original_clause(&mut self, lits: &[Lit]) {
        debug_assert!(!lits.is_empty());
        match lits.len() {
            1 => match self.value(lits[0]) {
                v if v == UNASSIGNED => {
                    self.enqueue(lits[0], Reason::Decision);
                }
                -1 => self.ok = false,
                _ => {}
            },
            2 => {
                // Indexed by the falsified literal: when lits[0] becomes
                // false, lits[1] is implied (and vice versa).
                self.bin_implications[lits[0].code() as usize].push(lits[1]);
                self.bin_implications[lits[1].code() as usize].push(lits[0]);
            }
            _ => {
                let idx = self.clauses.len() as u32;
                self.watches[lits[0].code() as usize].push(Watch {
                    clause: idx,
                    blocker: lits[1],
                });
                self.watches[lits[1].code() as usize].push(Watch {
                    clause: idx,
                    blocker: lits[0],
                });
                self.clauses.push(Clause {
                    lits: lits.to_vec(),
                    learnt: false,
                    deleted: false,
                    activity: 0.0,
                    lbd: 0,
                });
            }
        }
    }

    /// Adds a clause at decision level 0, simplifying it against the
    /// top-level assignment first.
    ///
    /// This is the post-construction twin of `add_original_clause`: by the
    /// time it runs, `qhead` is already past the level-0 trail, so a watch
    /// placed on an already-false literal would never be repaired by
    /// propagation. Simplification (drop false literals, skip satisfied
    /// clauses) restores the watch invariant instead.
    fn add_simplified_clause(&mut self, lits: &[Lit], learnt: bool) {
        debug_assert_eq!(self.current_level(), 0);
        if !self.ok {
            return;
        }
        let mut reduced: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            debug_assert!((l.var().index() as usize) < self.n_vars);
            match self.value(l) {
                1 => return, // satisfied at level 0
                -1 => {}     // falsified at level 0: drop
                _ => {
                    if !reduced.contains(&l) {
                        reduced.push(l);
                    }
                }
            }
        }
        match reduced.len() {
            0 => self.ok = false,
            1 => self.enqueue(reduced[0], Reason::Decision),
            2 => {
                self.bin_implications[reduced[0].code() as usize].push(reduced[1]);
                self.bin_implications[reduced[1].code() as usize].push(reduced[0]);
            }
            _ => {
                let idx = self.clauses.len() as u32;
                self.watches[reduced[0].code() as usize].push(Watch {
                    clause: idx,
                    blocker: reduced[1],
                });
                self.watches[reduced[1].code() as usize].push(Watch {
                    clause: idx,
                    blocker: reduced[0],
                });
                let lbd = reduced.len() as u32;
                self.clauses.push(Clause {
                    lits: reduced,
                    learnt,
                    deleted: false,
                    activity: self.cla_inc,
                    lbd,
                });
                if learnt {
                    self.stats.learnt_clauses += 1;
                }
            }
        }
    }

    /// Pulls every clause other workers published since this solver's
    /// cursor. Runs only at decision level 0 (call entry and restarts).
    ///
    /// No-op while a proof writer is installed: imported clauses are not
    /// derivable from this solver's own log, so they must never appear in
    /// (or influence clauses of) a DRAT-logged run.
    fn import_from_bus(&mut self) {
        let Some(bus) = self.bus.clone() else {
            return;
        };
        if self.proof.is_some() {
            return;
        }
        let fresh = bus.collect_since(self.bus_id, &mut self.bus_cursor);
        if fresh.is_empty() {
            return;
        }
        let mut taken = 0u64;
        for lits in &fresh {
            if !self.ok {
                break;
            }
            // A clause over a variable this solver already eliminated
            // cannot be attached (the variable no longer exists here);
            // skipping it is sound — imports are redundant by definition.
            if lits
                .iter()
                .any(|l| self.eliminated[l.var().index() as usize])
            {
                continue;
            }
            // Imported clauses are marked learnt so reduce_db may drop
            // them again if they turn out not to pull their weight.
            self.add_simplified_clause(lits, true);
            taken += 1;
        }
        self.imported += taken;
        bus.note_imported(taken);
    }

    /// Final-conflict analysis (MiniSat's `analyzeFinal`): called when
    /// assumption `p` is found false while enqueuing the assumption
    /// prefix. Walks the implication trail backwards from the assumption
    /// levels, collecting into `self.failed` the assumptions (= decisions
    /// at levels > 0) that together force `!p`.
    fn analyze_final(&mut self, p: Lit) {
        self.failed.clear();
        self.failed.push(p);
        if self.current_level() == 0 {
            // `!p` is a top-level consequence of the formula itself.
            return;
        }
        let pv = p.var().index() as usize;
        self.seen[pv] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().index() as usize;
            if !self.seen[v] {
                continue;
            }
            self.seen[v] = false;
            match self.reason[v] {
                // Decisions above level 0 are exactly the enqueued
                // assumptions.
                Reason::Decision => self.failed.push(l),
                Reason::Binary(other) => {
                    let ov = other.var().index() as usize;
                    if self.level[ov] > 0 {
                        self.seen[ov] = true;
                    }
                }
                Reason::Clause(c) => {
                    for k in 0..self.clauses[c as usize].lits.len() {
                        let q = self.clauses[c as usize].lits[k];
                        let qv = q.var().index() as usize;
                        if qv != v && self.level[qv] > 0 {
                            self.seen[qv] = true;
                        }
                    }
                }
            }
        }
        self.seen[pv] = false;
    }

    #[inline]
    fn value(&self, l: Lit) -> i8 {
        let v = self.assign[l.var().index() as usize];
        if l.is_positive() {
            v
        } else {
            -v
        }
    }

    #[inline]
    fn current_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: Reason) {
        debug_assert_eq!(self.value(l), UNASSIGNED);
        let v = l.var().index() as usize;
        self.assign[v] = if l.is_positive() { 1 } else { -1 };
        self.level[v] = self.current_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause's literals on
    /// conflict.
    fn propagate(&mut self) -> Option<Vec<Lit>> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = !p;
            let fcode = false_lit.code() as usize;

            // Binary layer first: cheapest propagations.
            for i in 0..self.bin_implications[fcode].len() {
                let q = self.bin_implications[fcode][i];
                match self.value(q) {
                    1 => {}
                    UNASSIGNED => {
                        self.stats.propagations += 1;
                        self.enqueue(q, Reason::Binary(false_lit));
                    }
                    _ => return Some(vec![q, false_lit]),
                }
            }

            // Long clauses watching `false_lit`.
            let mut ws = std::mem::take(&mut self.watches[fcode]);
            let mut i = 0;
            let mut conflict = None;
            'watches: while i < ws.len() {
                let w = ws[i];
                if self.value(w.blocker) == 1 {
                    i += 1;
                    continue;
                }
                let cidx = w.clause as usize;
                if self.clauses[cidx].deleted {
                    ws.swap_remove(i);
                    continue;
                }
                // Normalize: watched literals sit at positions 0 and 1.
                if self.clauses[cidx].lits[0] == false_lit {
                    self.clauses[cidx].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[cidx].lits[1], false_lit);
                let first = self.clauses[cidx].lits[0];
                if first != w.blocker && self.value(first) == 1 {
                    ws[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                for k in 2..self.clauses[cidx].lits.len() {
                    let cand = self.clauses[cidx].lits[k];
                    if self.value(cand) != -1 {
                        self.clauses[cidx].lits.swap(1, k);
                        self.watches[cand.code() as usize].push(Watch {
                            clause: w.clause,
                            blocker: first,
                        });
                        ws.swap_remove(i);
                        continue 'watches;
                    }
                }
                // No replacement: clause is unit or conflicting.
                if self.value(first) == -1 {
                    conflict = Some(self.clauses[cidx].lits.clone());
                    break;
                }
                self.stats.propagations += 1;
                self.enqueue(first, Reason::Clause(w.clause));
                i += 1;
            }
            // Restore the (possibly shrunk) watch list.
            debug_assert!(self.watches[fcode].is_empty());
            self.watches[fcode] = ws;
            if conflict.is_some() {
                self.qhead = self.trail.len();
                return conflict;
            }
        }
        None
    }

    /// Copies the literals of `l`'s reason clause into `buf` (clearing it
    /// first). Avoids the per-resolution allocation that dominates analyze.
    fn copy_reason_lits(&self, l: Lit, buf: &mut Vec<Lit>) {
        buf.clear();
        match self.reason[l.var().index() as usize] {
            Reason::Decision => {}
            Reason::Binary(other) => buf.extend([l, other]),
            Reason::Clause(c) => buf.extend_from_slice(&self.clauses[c as usize].lits),
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, conflict: Vec<Lit>) -> (Vec<Lit>, u32) {
        let current = self.current_level();
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // placeholder for the asserting literal
        let mut counter = 0usize;
        let mut reason_buf = conflict;
        let mut skip: Option<Lit> = None;
        let mut idx = self.trail.len();

        loop {
            if let Some(p) = skip {
                if let Reason::Clause(c) = self.reason[p.var().index() as usize] {
                    self.bump_clause(c);
                }
            }
            for i in 0..reason_buf.len() {
                let q = reason_buf[i];
                if Some(q) == skip {
                    continue;
                }
                let v = q.var().index() as usize;
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(q.var());
                    if self.level[v] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk back to the next marked trail literal.
            loop {
                idx -= 1;
                if self.seen[self.trail[idx].var().index() as usize] {
                    break;
                }
            }
            let p = self.trail[idx];
            self.seen[p.var().index() as usize] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !p;
                break;
            }
            let mut buf = std::mem::take(&mut reason_buf);
            self.copy_reason_lits(p, &mut buf);
            reason_buf = buf;
            skip = Some(p);
        }

        // Mark remaining literals as seen for minimization bookkeeping.
        for &l in &learnt[1..] {
            self.seen[l.var().index() as usize] = true;
        }
        if self.minimize_enabled {
            self.minimize_learnt(&mut learnt);
        }

        // Compute backtrack level and move that literal to position 1.
        let bt_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index() as usize]
                    > self.level[learnt[max_i].var().index() as usize]
                {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index() as usize]
        };

        for &l in &learnt {
            self.seen[l.var().index() as usize] = false;
        }
        for v in self.analyze_clear.drain(..) {
            self.seen[v.index() as usize] = false;
        }

        (learnt, bt_level)
    }

    /// Removes learnt-clause literals that are implied by the rest
    /// (recursive minimization à la MiniSat, conservative variant).
    fn minimize_learnt(&mut self, learnt: &mut Vec<Lit>) {
        let before = learnt.len();
        let mut keep = Vec::with_capacity(learnt.len() - 1);
        for i in 1..learnt.len() {
            let l = learnt[i];
            if self.literal_is_redundant(l) {
                // The removed literal's seen flag must be cleared after
                // analysis like every other mark.
                self.analyze_clear.push(l.var());
            } else {
                keep.push(l);
            }
        }
        learnt.truncate(1);
        learnt.extend(keep);
        self.stats.minimized_literals += (before - learnt.len()) as u64;
    }

    fn literal_is_redundant(&mut self, lit: Lit) -> bool {
        if matches!(self.reason[lit.var().index() as usize], Reason::Decision) {
            return false;
        }
        self.analyze_stack.clear();
        self.analyze_stack.push(lit);
        let mut to_undo: Vec<Var> = Vec::new();
        let mut rl: Vec<Lit> = Vec::new();
        while let Some(l) = self.analyze_stack.pop() {
            self.copy_reason_lits(!l, &mut rl);
            let skip = !l;
            for i in 0..rl.len() {
                let q = rl[i];
                if q == skip {
                    continue;
                }
                let v = q.var().index() as usize;
                if self.seen[v] || self.level[v] == 0 {
                    continue;
                }
                if matches!(self.reason[v], Reason::Decision) {
                    // Not implied: undo speculative marks and keep the literal.
                    for u in to_undo {
                        self.seen[u.index() as usize] = false;
                    }
                    return false;
                }
                self.seen[v] = true;
                to_undo.push(q.var());
                self.analyze_stack.push(q);
            }
        }
        // Marks stay seen; remember to clear them after analyze().
        self.analyze_clear.extend(to_undo);
        true
    }

    fn backtrack_to(&mut self, level: u32) {
        if self.current_level() <= level {
            return;
        }
        let lim = self.trail_lim[level as usize];
        for i in (lim..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().index() as usize;
            self.saved_phase[v] = self.assign[v] == 1;
            self.assign[v] = UNASSIGNED;
            self.heap.insert(l.var(), &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn learn(&mut self, learnt: Vec<Lit>) {
        // One emission site covers both analysis and minimization: `learnt`
        // is the final (post-minimization) clause, which is RUP w.r.t. the
        // clauses currently alive, so the derivation stays checkable.
        self.proof_add(&learnt);
        let lbd = self.compute_lbd(&learnt);
        if let Some(bus) = &self.bus {
            if lbd <= bus.max_lbd() && learnt.len() <= EXPORT_MAX_LEN {
                bus.publish(self.bus_id, &learnt);
                self.exported += 1;
            }
        }
        match learnt.len() {
            1 => {
                self.enqueue(learnt[0], Reason::Decision);
            }
            2 => {
                self.bin_implications[learnt[0].code() as usize].push(learnt[1]);
                self.bin_implications[learnt[1].code() as usize].push(learnt[0]);
                self.enqueue(learnt[0], Reason::Binary(learnt[1]));
            }
            _ => {
                let idx = self.clauses.len() as u32;
                self.watches[learnt[0].code() as usize].push(Watch {
                    clause: idx,
                    blocker: learnt[1],
                });
                self.watches[learnt[1].code() as usize].push(Watch {
                    clause: idx,
                    blocker: learnt[0],
                });
                let first = learnt[0];
                self.clauses.push(Clause {
                    lits: learnt,
                    learnt: true,
                    deleted: false,
                    activity: self.cla_inc,
                    lbd,
                });
                self.stats.learnt_clauses += 1;
                self.enqueue(first, Reason::Clause(idx));
            }
        }
    }

    fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits
            .iter()
            .map(|l| self.level[l.var().index() as usize])
            .collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    fn bump_var(&mut self, v: Var) {
        let i = v.index() as usize;
        self.activity[i] += self.var_inc;
        if self.activity[i] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.update(v, &self.activity);
    }

    fn decay_var_activity(&mut self) {
        self.var_inc /= 0.95;
    }

    fn bump_clause(&mut self, c: u32) {
        let clause = &mut self.clauses[c as usize];
        if !clause.learnt {
            return;
        }
        clause.activity += self.cla_inc;
        if clause.activity > 1e20 {
            for cl in &mut self.clauses {
                cl.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn decay_clause_activity(&mut self) {
        self.cla_inc /= 0.999;
    }

    fn is_reason(&self, idx: u32) -> bool {
        let c = &self.clauses[idx as usize];
        let first = c.lits[0];
        self.value(first) == 1 && self.reason[first.var().index() as usize] == Reason::Clause(idx)
    }

    fn reduce_db(&mut self) {
        let mut candidates: Vec<u32> = (0..self.clauses.len() as u32)
            .filter(|&i| {
                let c = &self.clauses[i as usize];
                c.learnt && !c.deleted && c.lbd > 2 && !self.is_reason(i)
            })
            .collect();
        candidates.sort_by(|&a, &b| {
            let ca = &self.clauses[a as usize];
            let cb = &self.clauses[b as usize];
            cb.lbd.cmp(&ca.lbd).then(
                ca.activity
                    .partial_cmp(&cb.activity)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        let delete_count = candidates.len() / 2;
        for &idx in &candidates[..delete_count] {
            // Take the literals so the deletion can be logged after the
            // storage is reclaimed.
            let lits = std::mem::take(&mut self.clauses[idx as usize].lits);
            self.proof_delete(&lits);
            self.clauses[idx as usize].deleted = true;
            self.stats.deleted_clauses += 1;
        }
        // Stale watch entries are dropped lazily during propagation.
    }

    fn decide(&mut self) -> Option<Lit> {
        while let Some(v) = self.heap.pop(&self.activity) {
            let i = v.index() as usize;
            if self.assign[i] == UNASSIGNED && !self.eliminated[i] {
                let phase = self.saved_phase[i];
                return Some(v.lit(phase));
            }
        }
        None
    }

    fn extract_model(&self) -> Model {
        let mut values: Vec<bool> = (0..self.n_vars).map(|v| self.assign[v] == 1).collect();
        // Extend the assignment over eliminated variables by replaying the
        // elimination records newest-first. For each pivot, keeping the
        // default value or flipping it must satisfy every clause the
        // elimination removed (the standard BVE reconstruction lemma: a
        // model of the resolvents extends to the pivot).
        for (pivot, removed) in self.elim_stack.iter().rev() {
            let pv = pivot.var().index() as usize;
            let sat = |values: &[bool], c: &[Lit]| {
                c.iter()
                    .any(|l| values[l.var().index() as usize] == l.is_positive())
            };
            if !removed.iter().all(|c| sat(&values, c)) {
                values[pv] = !values[pv];
                debug_assert!(
                    removed.iter().all(|c| sat(&values, c)),
                    "BVE reconstruction failed to satisfy a removed clause"
                );
            }
        }
        Model::new(values)
    }

    fn search(&mut self, assumptions: &[Lit], budget: Budget, start: Instant) -> SatResult {
        if !self.ok {
            return SatResult::Unsat;
        }
        if self.propagate().is_some() {
            // A top-level conflict refutes the base formula itself;
            // remember that across calls.
            self.ok = false;
            return SatResult::Unsat;
        }

        // Budget limits and the reduce_db schedule are measured from this
        // call's entry so that reusing a solver does not shrink later
        // calls' budgets (counters in `stats` accumulate across calls).
        let conflicts_at_entry = self.stats.conflicts;
        let proof_steps_at_entry = self.stats.proof_steps;
        let mut restart_idx: u64 = 0;
        let mut conflicts_until_restart = restart_interval(self.restart_policy, restart_idx);
        let mut next_reduce: u64 = conflicts_at_entry + 4000;

        // Cancellation is polled every `CANCEL_POLL_INTERVAL` propagate/decide
        // rounds — far more often than restarts — so an external cancel()
        // aborts the call promptly even when the search is deep in a run
        // between restarts. The poll itself is one relaxed atomic load.
        const CANCEL_POLL_INTERVAL: u32 = 1024;
        let cancel = budget.cancellation().cloned();
        let deadline = budget.deadline();
        // Telemetry sampling rides the same cadence: enabling it turns the
        // poll guard on but adds no additional hot-loop checks.
        let poll_abort = cancel.is_some() || deadline.is_some() || self.telemetry.is_enabled();
        let mut cancel_countdown = 1u32; // poll on the first iteration

        loop {
            if poll_abort {
                cancel_countdown -= 1;
                if cancel_countdown == 0 {
                    cancel_countdown = CANCEL_POLL_INTERVAL;
                    self.stats.cancel_polls += 1;
                    if let Some(token) = &cancel {
                        if token.is_cancelled() {
                            self.stats.cancelled = true;
                            return SatResult::Unknown;
                        }
                    }
                    if let Some(d) = deadline {
                        if d.expired() {
                            self.stats.deadline_expired = true;
                            return SatResult::Unknown;
                        }
                    }
                    self.emit_counter_deltas();
                }
            }
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                if self.current_level() == 0 {
                    self.ok = false;
                    return SatResult::Unsat;
                }
                let (learnt, bt) = self.analyze(conflict);
                self.backtrack_to(bt);
                self.learn(learnt);
                self.decay_var_activity();
                self.decay_clause_activity();

                conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
                if self.stats.conflicts >= next_reduce {
                    next_reduce +=
                        4000 + 600 * ((self.stats.conflicts - conflicts_at_entry) / 4000);
                    self.reduce_db();
                }
            } else {
                if conflicts_until_restart == 0 {
                    // Budget checks piggyback on restarts.
                    if let Some(max) = budget.max_conflicts() {
                        if self.stats.conflicts - conflicts_at_entry >= max {
                            return SatResult::Unknown;
                        }
                    }
                    if let Some(max) = budget.max_time() {
                        if start.elapsed() >= max {
                            return SatResult::Unknown;
                        }
                    }
                    if let Some(max) = budget.max_proof_steps() {
                        if self.stats.proof_steps - proof_steps_at_entry >= max {
                            return SatResult::Unknown;
                        }
                    }
                    restart_idx += 1;
                    conflicts_until_restart = restart_interval(self.restart_policy, restart_idx);
                    self.stats.restarts += 1;
                    self.backtrack_to(0);
                    // Restarts are the natural low-cost moment to pick up
                    // what the rest of the portfolio has learned — and to
                    // inprocess the accumulated database while the trail
                    // is back at level 0 anyway.
                    self.import_from_bus();
                    self.maybe_inprocess(&budget);
                    if !self.ok {
                        return SatResult::Unsat;
                    }
                    continue;
                }
                // The assumption prefix: assumption `i` owns decision
                // level `i + 1` (an already-satisfied assumption holds an
                // empty level open), so final-conflict analysis can treat
                // every decision above level 0 as an assumption.
                if (self.current_level() as usize) < assumptions.len() {
                    let p = assumptions[self.current_level() as usize];
                    match self.value(p) {
                        1 => self.trail_lim.push(self.trail.len()),
                        -1 => {
                            self.analyze_final(p);
                            return SatResult::Unsat;
                        }
                        _ => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(p, Reason::Decision);
                        }
                    }
                    continue;
                }
                match self.decide() {
                    Some(l) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(l, Reason::Decision);
                    }
                    None => return SatResult::Sat(self.extract_model()),
                }
            }
        }
    }
}

/// Conflicts allotted to restart run `idx` under `policy` (base 128).
fn restart_interval(policy: RestartPolicy, idx: u64) -> u64 {
    const BASE: u64 = 128;
    match policy {
        RestartPolicy::Luby => luby(idx) * BASE,
        // 1.2^idx saturates safely: `as u64` clamps out-of-range floats.
        RestartPolicy::Geometric => (BASE as f64 * 1.2f64.powi(idx.min(220) as i32)) as u64,
    }
}

/// The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, …), 0-indexed.
fn luby(x: u64) -> u64 {
    let mut x = x;
    let (mut size, mut seq) = (1u64, 0u32);
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

/// Max-heap over variables keyed by activity, with index positions for
/// `update`.
#[derive(Debug)]
struct VarHeap {
    heap: Vec<Var>,
    pos: Vec<usize>,
}

const NOT_IN_HEAP: usize = usize::MAX;

impl VarHeap {
    fn new(n: usize) -> Self {
        let heap: Vec<Var> = (0..n as u32).map(Var::from_index).collect();
        let pos = (0..n).collect();
        Self { heap, pos }
    }

    fn insert(&mut self, v: Var, act: &[f64]) {
        if self.pos[v.index() as usize] != NOT_IN_HEAP {
            return;
        }
        self.pos[v.index() as usize] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn update(&mut self, v: Var, act: &[f64]) {
        let p = self.pos[v.index() as usize];
        if p != NOT_IN_HEAP {
            self.sift_up(p, act);
        }
    }

    fn pop(&mut self, act: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("heap non-empty");
        self.pos[top.index() as usize] = NOT_IN_HEAP;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.index() as usize] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i].index() as usize] <= act[self.heap[parent].index() as usize] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut largest = i;
            if l < self.heap.len()
                && act[self.heap[l].index() as usize] > act[self.heap[largest].index() as usize]
            {
                largest = l;
            }
            if r < self.heap.len()
                && act[self.heap[r].index() as usize] > act[self.heap[largest].index() as usize]
            {
                largest = r;
            }
            if largest == i {
                break;
            }
            self.swap(i, largest);
            i = largest;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a].index() as usize] = a;
        self.pos[self.heap[b].index() as usize] = b;
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use super::*;
    use crate::CnfFormula;

    fn lits(cnf: &mut CnfFormula, n: usize) -> Vec<Lit> {
        (0..n).map(|_| cnf.new_lit()).collect()
    }

    /// Pigeonhole principle: `pigeons` into `holes`; UNSAT iff pigeons > holes.
    fn pigeonhole(pigeons: usize, holes: usize) -> CnfFormula {
        let mut cnf = CnfFormula::new();
        let vars: Vec<Vec<Lit>> = (0..pigeons).map(|_| lits(&mut cnf, holes)).collect();
        for p in &vars {
            cnf.add_clause(p.iter().copied());
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    cnf.add_clause([!vars[p1][h], !vars[p2][h]]);
                }
            }
        }
        cnf
    }

    #[test]
    fn trivial_cases() {
        let mut cnf = CnfFormula::new();
        let a = cnf.new_lit();
        cnf.add_clause([a]);
        assert!(Solver::new(cnf.clone()).solve().is_sat());
        cnf.add_clause([!a]);
        assert!(Solver::new(cnf).solve().is_unsat());
        assert!(Solver::new(CnfFormula::new()).solve().is_sat());
    }

    #[test]
    fn pigeonhole_unsat() {
        for holes in 1..=5usize {
            let cnf = pigeonhole(holes + 1, holes);
            assert!(
                Solver::new(cnf).solve().is_unsat(),
                "php({}, {holes})",
                holes + 1
            );
        }
    }

    #[test]
    fn pigeonhole_sat_when_enough_holes() {
        for holes in 1..=6usize {
            let cnf = pigeonhole(holes, holes);
            let clauses: Vec<Vec<Lit>> = cnf.clauses().to_vec();
            match Solver::new(cnf).solve() {
                SatResult::Sat(m) => {
                    for c in &clauses {
                        assert!(c.iter().any(|&l| m.value(l)), "model violates clause");
                    }
                }
                other => panic!("php({holes},{holes}) must be SAT, got {other:?}"),
            }
        }
    }

    #[test]
    fn models_satisfy_all_clauses_on_random_instances() {
        // Deterministic xorshift so the test is reproducible.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..60 {
            let n_vars = 8 + (rng() % 8) as usize;
            let n_clauses = (3 * n_vars) + (rng() % 10) as usize;
            let mut cnf = CnfFormula::new();
            let vars = lits(&mut cnf, n_vars);
            let mut clause_list = Vec::new();
            for _ in 0..n_clauses {
                let len = 1 + (rng() % 3) as usize;
                let clause: Vec<Lit> = (0..len)
                    .map(|_| {
                        let v = vars[(rng() % n_vars as u64) as usize];
                        if rng() % 2 == 0 {
                            v
                        } else {
                            !v
                        }
                    })
                    .collect();
                clause_list.push(clause.clone());
                cnf.add_clause(clause);
            }
            // Brute-force ground truth.
            let expected_sat = (0..(1u32 << n_vars)).any(|bits| {
                clause_list.iter().all(|c| {
                    c.iter().any(|l| {
                        let val = (bits >> l.var().index()) & 1 == 1;
                        val == l.is_positive()
                    })
                })
            });
            match Solver::new(cnf).solve() {
                SatResult::Sat(m) => {
                    assert!(
                        expected_sat,
                        "round {round}: solver said SAT, brute force UNSAT"
                    );
                    for c in &clause_list {
                        assert!(c.iter().any(|&l| m.value(l)), "round {round}: bad model");
                    }
                }
                SatResult::Unsat => {
                    assert!(
                        !expected_sat,
                        "round {round}: solver said UNSAT, brute force SAT"
                    )
                }
                SatResult::Unknown => panic!("round {round}: no budget was set"),
            }
        }
    }

    #[test]
    fn budget_returns_unknown() {
        let cnf = pigeonhole(9, 8); // hard enough to exceed a 10-conflict budget
        let (result, stats) =
            Solver::new(cnf).solve_with_budget(Budget::new().with_max_conflicts(10));
        assert_eq!(result, SatResult::Unknown);
        assert!(stats.conflicts >= 10);
    }

    #[test]
    fn cancellation_aborts_promptly() {
        use crate::CancellationToken;
        use std::time::Duration;

        // php(11, 10) takes a CDCL solver far longer than the test's
        // tolerance, so finishing under it proves the abort worked. The
        // generous time budget exists only to bound the test if cancellation
        // were broken.
        let cnf = pigeonhole(11, 10);
        let token = CancellationToken::new();
        let budget = Budget::new()
            .with_max_time(Duration::from_secs(120))
            .with_cancellation(token.clone());

        let handle = std::thread::spawn(move || {
            let start = Instant::now();
            let (result, stats) = Solver::new(cnf).solve_with_budget(budget);
            (result, stats, start.elapsed())
        });
        std::thread::sleep(Duration::from_millis(50));
        let cancel_time = Instant::now();
        token.cancel();
        let (result, stats, elapsed) = handle.join().expect("solver thread panicked");

        assert_eq!(result, SatResult::Unknown);
        assert!(stats.cancelled, "abort must be attributed to the token");
        assert!(stats.cancel_polls > 0);
        // Prompt: the solver noticed the trip in well under the time budget
        // (poll interval is 1024 propagate/decide rounds, i.e. milliseconds).
        assert!(
            cancel_time.elapsed() < Duration::from_secs(10),
            "solver took {:?} after cancel",
            cancel_time.elapsed()
        );
        assert!(elapsed < Duration::from_secs(60));
    }

    #[test]
    fn pre_cancelled_budget_returns_unknown_immediately() {
        use crate::CancellationToken;

        let token = CancellationToken::new();
        token.cancel();
        let cnf = pigeonhole(8, 7);
        let (result, stats) =
            Solver::new(cnf).solve_with_budget(Budget::new().with_cancellation(token));
        assert_eq!(result, SatResult::Unknown);
        assert!(stats.cancelled);
        assert_eq!(stats.conflicts, 0, "no search work after a pre-trip");
    }

    #[test]
    fn expired_deadline_returns_unknown_immediately() {
        use crate::Deadline;

        let cnf = pigeonhole(8, 7);
        let deadline = Deadline::after(Duration::ZERO);
        let (result, stats) =
            Solver::new(cnf).solve_with_budget(Budget::new().with_deadline(deadline));
        assert_eq!(result, SatResult::Unknown);
        assert!(stats.deadline_expired);
        assert!(!stats.cancelled);
        assert_eq!(
            stats.conflicts, 0,
            "no search work past an expired deadline"
        );
    }

    #[test]
    fn mid_search_deadline_aborts_promptly() {
        use crate::Deadline;

        // Hard enough that a 50 ms deadline expires mid-search; the hot-loop
        // poll must then abort well before the instance would finish.
        let cnf = pigeonhole(10, 9);
        let deadline = Deadline::after(Duration::from_millis(50));
        let start = Instant::now();
        let (result, stats) =
            Solver::new(cnf).solve_with_budget(Budget::new().with_deadline(deadline));
        assert_eq!(result, SatResult::Unknown);
        assert!(stats.deadline_expired);
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "deadline abort took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn certified_pigeonhole_proofs_check() {
        for holes in 1..=4usize {
            let cnf = pigeonhole(holes + 1, holes);
            let (result, stats, proof) = Solver::new(cnf.clone()).solve_certified(Budget::new());
            assert!(result.is_unsat(), "php({}, {holes})", holes + 1);
            let proof = proof.expect("certified solve returns the log");
            assert!(proof.is_concluded());
            assert_eq!(stats.proof_steps as usize, proof.n_steps());
            let check = crate::drat::check(&cnf, &proof)
                .unwrap_or_else(|e| panic!("php({}, {holes}) proof rejected: {e}", holes + 1));
            assert_eq!(check.additions + check.deletions + 1, proof.n_steps());
        }
    }

    #[test]
    fn sat_solve_leaves_proof_unconcluded() {
        let cnf = pigeonhole(4, 4);
        let (result, _, proof) = Solver::new(cnf.clone()).solve_certified(Budget::new());
        assert!(result.is_sat());
        let proof = proof.expect("log present");
        assert!(!proof.is_concluded());
        assert_eq!(
            crate::drat::check(&cnf, &proof),
            Err(crate::drat::DratError::NoEmptyClause)
        );
    }

    #[test]
    fn cancelled_solve_yields_unknown_and_uncheckable_proof() {
        use crate::CancellationToken;

        let token = CancellationToken::new();
        token.cancel();
        let cnf = pigeonhole(8, 7);
        let (result, stats, proof) =
            Solver::new(cnf.clone()).solve_certified(Budget::new().with_cancellation(token));
        assert_eq!(result, SatResult::Unknown);
        assert!(stats.cancelled);
        let proof = proof.expect("log present even when aborted");
        assert!(!proof.is_concluded());
        assert!(crate::drat::check(&cnf, &proof).is_err());
    }

    #[test]
    fn proof_step_budget_returns_unknown() {
        let cnf = pigeonhole(9, 8);
        let (result, stats, proof) =
            Solver::new(cnf).solve_certified(Budget::new().with_max_proof_steps(10));
        assert_eq!(result, SatResult::Unknown);
        assert!(stats.proof_steps >= 10);
        assert!(!proof.expect("log present").is_concluded());
    }

    #[test]
    fn proofs_with_db_reduction_still_check() {
        // Large enough to cross the 4000-conflict reduce_db threshold, so
        // the proof contains deletion steps the checker must undo.
        let cnf = pigeonhole(8, 7);
        let (result, stats, proof) = Solver::new(cnf.clone()).solve_certified(Budget::new());
        assert!(result.is_unsat());
        let proof = proof.expect("log present");
        if stats.deleted_clauses == 0 {
            // Deletions are what this test is about; the instance must be
            // hard enough to trigger at least one reduction.
            panic!("php(8,7) no longer triggers reduce_db; grow the instance");
        }
        let check = crate::drat::check(&cnf, &proof).expect("proof with deletions checks");
        assert!(check.deletions > 0);
        assert!(check.core_additions <= check.additions);
    }

    #[test]
    fn file_proof_writer_output_reparses_and_checks() {
        let cnf = pigeonhole(5, 4);
        let dir = std::env::temp_dir().join("mm-sat-proof-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("php54-{}.drat", std::process::id()));
        let writer = crate::FileProofWriter::create(&path).expect("create proof file");
        let (result, _, writer) = Solver::new(cnf.clone())
            .with_proof_writer(Box::new(writer))
            .solve_logged(Budget::new());
        assert!(result.is_unsat());
        let writer = writer
            .expect("writer returned")
            .into_any()
            .downcast::<crate::FileProofWriter>()
            .expect("concrete type");
        assert!(writer.steps_written() > 0);
        writer.finish().expect("no sticky I/O error");
        let text = std::fs::read_to_string(&path).expect("proof file readable");
        let proof = DratProof::parse(&text).expect("file round-trips");
        crate::drat::check(&cnf, &proof).expect("file-backed proof checks");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn luby_sequence_prefix() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..expected.len() as u64).map(luby).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn at_most_one_chain_propagates() {
        // A long implication chain mixed with an exactly-one block exercises
        // binary propagation, learning and backtracking together.
        let mut cnf = CnfFormula::new();
        let chain = lits(&mut cnf, 50);
        for w in chain.windows(2) {
            cnf.add_clause([!w[0], w[1]]);
        }
        let block = lits(&mut cnf, 10);
        cnf.exactly_one(&block, crate::ExactlyOne::Pairwise);
        cnf.add_clause([chain[0]]);
        cnf.add_clause([!chain[49], block[3]]);
        match Solver::new(cnf).solve() {
            SatResult::Sat(m) => {
                assert!(m.value(block[3]));
                assert_eq!(block.iter().filter(|&&b| m.value(b)).count(), 1);
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn stats_are_populated() {
        let cnf = pigeonhole(6, 5);
        let (result, stats) = Solver::new(cnf).solve_with_budget(Budget::new());
        assert!(result.is_unsat());
        assert!(stats.conflicts > 0);
        assert!(stats.propagations > 0);
        assert!(stats.solve_time.as_nanos() > 0);
    }

    #[test]
    fn assumptions_drive_reusable_solves() {
        // x1 -> x2 -> x3, plus (!x3 or x4).
        let mut cnf = CnfFormula::new();
        let x = lits(&mut cnf, 4);
        cnf.add_clause([!x[0], x[1]]);
        cnf.add_clause([!x[1], x[2]]);
        cnf.add_clause([!x[2], x[3]]);
        let mut solver = Solver::new(cnf);

        match solver.solve_under_assumptions(&[x[0]], Budget::new()) {
            SatResult::Sat(m) => {
                assert!(m.value(x[0]) && m.value(x[1]) && m.value(x[2]) && m.value(x[3]));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
        // The same solver answers a contradictory assumption set.
        let result = solver.solve_under_assumptions(&[x[0], !x[3]], Budget::new());
        assert_eq!(result, SatResult::Unsat);
        let failed = solver.failed_assumptions().to_vec();
        assert!(!failed.is_empty());
        for l in &failed {
            assert!([x[0], !x[3]].contains(l), "failed set must be a subset");
        }
        // And is still usable afterwards, including with no assumptions.
        assert!(solver.solve_under_assumptions(&[], Budget::new()).is_sat());
    }

    #[test]
    fn base_unsat_is_sticky_and_failed_set_is_empty() {
        let mut cnf = CnfFormula::new();
        let a = cnf.new_lit();
        let b = cnf.new_lit();
        cnf.add_clause([a, b]);
        cnf.add_clause([a, !b]);
        cnf.add_clause([!a, b]);
        cnf.add_clause([!a, !b]);
        let mut solver = Solver::new(cnf);
        assert_eq!(
            solver.solve_under_assumptions(&[a], Budget::new()),
            SatResult::Unsat
        );
        // The conflict is rooted at level 0, so no assumption is blamed …
        assert!(solver.failed_assumptions().is_empty());
        // … and the refutation is remembered across calls.
        assert_eq!(
            solver.solve_under_assumptions(&[], Budget::new()),
            SatResult::Unsat
        );
    }

    #[test]
    fn post_solve_add_clause_constrains_later_calls() {
        let mut cnf = CnfFormula::new();
        let x = lits(&mut cnf, 3);
        cnf.add_clause([x[0], x[1], x[2]]);
        let mut solver = Solver::new(cnf);
        assert!(solver.solve_under_assumptions(&[], Budget::new()).is_sat());
        solver.add_clause(&[!x[0]]);
        solver.add_clause(&[!x[1]]);
        match solver.solve_under_assumptions(&[], Budget::new()) {
            SatResult::Sat(m) => {
                assert!(!m.value(x[0]) && !m.value(x[1]) && m.value(x[2]));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
        solver.add_clause(&[!x[2]]);
        assert!(solver
            .solve_under_assumptions(&[], Budget::new())
            .is_unsat());
    }

    #[test]
    fn unsat_under_assumptions_leaves_formula_satisfiable() {
        // php(n, n) is SAT, but assuming two pigeons share a hole is not.
        let cnf = pigeonhole(3, 3);
        let mut solver = Solver::new(cnf);
        let p0h0 = Var::from_index(0).positive();
        let p1h0 = Var::from_index(3).positive();
        assert_eq!(
            solver.solve_under_assumptions(&[p0h0, p1h0], Budget::new()),
            SatResult::Unsat
        );
        let failed = solver.failed_assumptions().to_vec();
        assert!(!failed.is_empty());
        assert!(failed.iter().all(|l| [p0h0, p1h0].contains(l)));
        match solver.solve_under_assumptions(&[p0h0], Budget::new()) {
            SatResult::Sat(m) => {
                assert!(m.value(p0h0));
                assert!(!m.value(p1h0));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn repeated_assumption_solves_accumulate_stats() {
        let cnf = pigeonhole(6, 5);
        let mut solver = Solver::new(cnf);
        // UNSAT regardless of (consistent) assumptions, with learning
        // shared between the calls.
        assert!(solver
            .solve_under_assumptions(&[], Budget::new())
            .is_unsat());
        let after_first = solver.stats();
        assert!(after_first.conflicts > 0);
        assert!(solver
            .solve_under_assumptions(&[], Budget::new())
            .is_unsat());
        let after_second = solver.stats();
        assert!(after_second.solve_time >= after_first.solve_time);
        assert!(after_second.conflicts >= after_first.conflicts);
    }

    #[test]
    fn per_call_conflict_budget_is_not_consumed_by_earlier_calls() {
        let cnf = pigeonhole(7, 6);
        let mut solver = Solver::new(cnf);
        // Burn well past 10 conflicts solving to completion …
        assert!(solver
            .solve_under_assumptions(&[], Budget::new())
            .is_unsat());
        assert!(solver.stats().conflicts > 10);
        // … and a later tiny budget still gets its own 10 conflicts
        // (UNSAT is remembered, so this returns instantly — the point is
        // it must not claim Unknown from a pre-exhausted budget).
        let result = solver.solve_under_assumptions(&[], Budget::new().with_max_conflicts(10));
        assert_eq!(result, SatResult::Unsat);
    }

    #[test]
    fn clause_bus_shares_learnt_clauses_between_solvers() {
        use crate::ClauseBus;

        let cnf = pigeonhole(6, 5);
        let bus = ClauseBus::new(u32::MAX);
        let mut exporter = Solver::new(cnf.clone()).with_clause_bus(bus.clone());
        assert!(exporter
            .solve_under_assumptions(&[], Budget::new())
            .is_unsat());
        assert!(exporter.exported_clauses() > 0, "php learns short clauses");
        assert_eq!(bus.exported(), exporter.exported_clauses());

        let mut importer = Solver::new(cnf).with_clause_bus(bus.clone());
        assert!(importer
            .solve_under_assumptions(&[], Budget::new())
            .is_unsat());
        assert!(importer.imported_clauses() > 0);
        assert!(bus.imported() >= importer.imported_clauses());
    }

    #[test]
    fn imported_clauses_preserve_answers() {
        use crate::ClauseBus;

        // SAT instance: importing a sibling's learnt clauses must not
        // flip the answer or break the model.
        let cnf = pigeonhole(6, 6);
        let clauses: Vec<Vec<Lit>> = cnf.clauses().to_vec();
        let bus = ClauseBus::new(u32::MAX);
        let mut first = Solver::new(cnf.clone()).with_clause_bus(bus.clone());
        assert!(first.solve_under_assumptions(&[], Budget::new()).is_sat());

        let mut second = Solver::new(cnf).with_clause_bus(bus);
        match second.solve_under_assumptions(&[], Budget::new()) {
            SatResult::Sat(m) => {
                for c in &clauses {
                    assert!(c.iter().any(|&l| m.value(l)), "model violates clause");
                }
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn proof_logged_solver_never_imports() {
        use crate::ClauseBus;

        let cnf = pigeonhole(5, 4);
        let bus = ClauseBus::new(u32::MAX);
        // A sibling fills the bus first.
        let mut feeder = Solver::new(cnf.clone()).with_clause_bus(bus.clone());
        assert!(feeder
            .solve_under_assumptions(&[], Budget::new())
            .is_unsat());
        assert!(bus.exported() > 0);

        let (result, _, proof) = Solver::new(cnf.clone())
            .with_clause_bus(bus.clone())
            .solve_certified(Budget::new());
        assert!(result.is_unsat());
        let proof = proof.expect("certified solve returns the log");
        crate::drat::check(&cnf, &proof)
            .expect("proof of a bus-attached logged solver must stay self-contained");
    }

    #[test]
    fn telemetry_counter_totals_equal_stats() {
        use mm_telemetry::{MemorySink, RunReport};
        use std::sync::Arc;

        let sink = Arc::new(MemorySink::new());
        let telemetry = Telemetry::new(sink.clone());
        let cnf = pigeonhole(6, 5);
        let (result, stats) = Solver::new(cnf)
            .with_telemetry(telemetry.clone())
            .solve_with_budget(Budget::new());
        assert!(result.is_unsat());

        // Sampled emission batches deltas, but the final flush makes the
        // totals exact regardless of how many polls happened.
        let report = RunReport::from_events(&sink.snapshot());
        assert_eq!(report.counter("solver.conflicts"), stats.conflicts);
        assert_eq!(report.counter("solver.propagations"), stats.propagations);
        assert_eq!(report.counter("solver.decisions"), stats.decisions);
        assert_eq!(report.counter("solver.restarts"), stats.restarts);
        // Enabling telemetry turns the poll guard on even with no budget.
        assert!(stats.cancel_polls > 0);
    }
}
