use crate::{Lit, Var};

/// A satisfying assignment returned by the solver.
///
/// Every variable of the formula is assigned; variables that were irrelevant
/// to satisfiability receive an arbitrary (but fixed) polarity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    values: Vec<bool>,
}

impl Model {
    pub(crate) fn new(values: Vec<bool>) -> Self {
        Self { values }
    }

    /// The truth value of a variable.
    ///
    /// # Panics
    ///
    /// Panics if the variable was not part of the solved formula.
    pub fn var_value(&self, var: Var) -> bool {
        self.values[var.index() as usize]
    }

    /// The truth value of a literal.
    ///
    /// # Panics
    ///
    /// Panics if the literal's variable was not part of the solved formula.
    pub fn value(&self, lit: Lit) -> bool {
        self.var_value(lit.var()) == lit.is_positive()
    }

    /// Number of assigned variables.
    pub fn n_vars(&self) -> usize {
        self.values.len()
    }

    /// Iterates over `(Var, bool)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, bool)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(|(i, &v)| (Var::from_index(i as u32), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_values_follow_polarity() {
        let m = Model::new(vec![true, false]);
        let v0 = Var::from_index(0);
        let v1 = Var::from_index(1);
        assert!(m.value(v0.positive()));
        assert!(!m.value(v0.negative()));
        assert!(!m.value(v1.positive()));
        assert!(m.value(v1.negative()));
        assert_eq!(m.n_vars(), 2);
        assert_eq!(m.iter().count(), 2);
    }
}
