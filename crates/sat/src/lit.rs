use std::fmt;
use std::ops::Not;

/// A propositional variable, numbered from 0.
///
/// The DIMACS representation of variable `i` is `i + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(u32);

impl Var {
    /// Creates a variable from its 0-based index.
    pub fn from_index(index: u32) -> Self {
        Self(index)
    }

    /// The variable's 0-based index.
    pub fn index(self) -> u32 {
        self.0
    }

    /// The positive literal of this variable.
    pub fn positive(self) -> Lit {
        Lit::new(self, true)
    }

    /// The negative literal of this variable.
    pub fn negative(self) -> Lit {
        Lit::new(self, false)
    }

    /// Constructs a literal of this variable with the given polarity.
    pub fn lit(self, positive: bool) -> Lit {
        Lit::new(self, positive)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable together with a polarity.
///
/// Internally encoded as `2·var + (1 if negative)`, so the two literals of a
/// variable are adjacent codes — handy for watch-list indexing.
///
/// # Example
///
/// ```
/// use mm_sat::{Lit, Var};
///
/// let v = Var::from_index(3);
/// let l = v.positive();
/// assert_eq!(!l, v.negative());
/// assert_eq!(l.var(), v);
/// assert!(l.is_positive());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal from a variable and polarity (`true` = positive).
    pub fn new(var: Var, positive: bool) -> Self {
        Self(var.0 * 2 + u32::from(!positive))
    }

    /// Reconstructs a literal from its internal code.
    pub fn from_code(code: u32) -> Self {
        Self(code)
    }

    /// The literal's internal code (`2·var + sign`).
    pub fn code(self) -> u32 {
        self.0
    }

    /// The literal's variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is positive.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Whether the literal is negative.
    pub fn is_negative(self) -> bool {
        self.0 & 1 == 1
    }

    /// Converts to the DIMACS integer convention (`±(var + 1)`).
    pub fn to_dimacs(self) -> i64 {
        let v = i64::from(self.var().index()) + 1;
        if self.is_positive() {
            v
        } else {
            -v
        }
    }

    /// Parses a literal from the DIMACS integer convention.
    ///
    /// Returns `None` for 0 (the DIMACS clause terminator) or values whose
    /// magnitude does not fit a `u32`.
    pub fn from_dimacs(value: i64) -> Option<Self> {
        if value == 0 {
            return None;
        }
        let magnitude = value.unsigned_abs();
        if magnitude > u64::from(u32::MAX) {
            return None;
        }
        let var = Var((magnitude - 1) as u32);
        Some(Lit::new(var, value > 0))
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "¬")?;
        }
        write!(f, "{}", self.var())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_codes_are_adjacent() {
        let v = Var::from_index(7);
        assert_eq!(v.positive().code(), 14);
        assert_eq!(v.negative().code(), 15);
        assert_eq!(!v.positive(), v.negative());
        assert_eq!(!!v.positive(), v.positive());
    }

    #[test]
    fn dimacs_round_trip() {
        for code in 0..40u32 {
            let l = Lit::from_code(code);
            assert_eq!(Lit::from_dimacs(l.to_dimacs()), Some(l));
        }
        assert_eq!(Lit::from_dimacs(0), None);
        assert_eq!(Lit::from_dimacs(5), Some(Var::from_index(4).positive()));
        assert_eq!(Lit::from_dimacs(-5), Some(Var::from_index(4).negative()));
    }

    #[test]
    fn display_forms() {
        let v = Var::from_index(2);
        assert_eq!(v.positive().to_string(), "v2");
        assert_eq!(v.negative().to_string(), "¬v2");
    }
}
