//! DRAT proofs and a from-scratch backward proof checker.
//!
//! An UNSAT answer from the CDCL solver is only as trustworthy as the
//! solver's code. This module removes the solver from the trusted base:
//! with proof logging on, every learnt clause and every database deletion
//! is recorded as a [`ProofStep`], and [`check`] independently verifies
//! that the recorded derivation really ends in the empty clause.
//!
//! The checker implements the classic *backward* scheme of `drat-trim`:
//!
//! 1. a forward pass replays additions/deletions to build the clause
//!    database active at the point the empty clause is claimed;
//! 2. the empty clause is verified by unit propagation (RUP: reverse unit
//!    propagation), marking the clauses of the conflict derivation *core*;
//! 3. walking the proof backwards, each addition is removed from the
//!    database and — only if it was marked core by a later check — itself
//!    RUP-verified, lazily marking its own antecedents core. Deletion
//!    steps are undone by re-activating the clause.
//!
//! Lazy core marking means redundant learnt clauses (ones no later
//! derivation depends on) are never propagated over, which is the main
//! cost saving of backward over forward checking.
//!
//! The checker accepts the RUP fragment of DRAT, and everything `mm-sat`
//! emits lands in that fragment by construction:
//!
//! * every first-UIP learnt clause, minimized or not, is RUP with respect
//!   to the clauses alive when it was learnt;
//! * inprocessing (`solver/inprocess.rs`) stays inside the fragment too —
//!   a vivified or self-subsumption-strengthened clause is exactly what
//!   unit propagation proved, so it is RUP; a bounded-variable-elimination
//!   resolvent is RUP against its two parents; and subsumption only emits
//!   *deletions*. All rewrites log Add-before-Delete (with level-0 implied
//!   units logged ahead of the first deletion that could depend on them),
//!   so no step ever references a clause the checker has already dropped.
//!
//! Completeness for `mm-sat` proofs is therefore by construction, and
//! soundness needs no assumption about the solver at all —
//! `tests/drat_negative.rs` pins that corrupted inprocessing deletions,
//! fabricated additions, and reordered parent deletions are all rejected.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

use crate::{CnfFormula, Lit, ProofWriter, SatError};

/// One step of a DRAT derivation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofStep {
    /// A clause addition; the empty clause concludes the proof.
    Add(Vec<Lit>),
    /// A clause deletion.
    Delete(Vec<Lit>),
}

/// An in-memory DRAT derivation, usable both as the solver's
/// [`ProofWriter`] backend and as the [`check`] input.
///
/// # Example
///
/// ```
/// use mm_sat::{drat, Budget, CnfFormula, SatResult, Solver};
///
/// let mut cnf = CnfFormula::new();
/// let a = cnf.new_lit();
/// let b = cnf.new_lit();
/// cnf.add_clause([a, b]);
/// cnf.add_clause([a, !b]);
/// cnf.add_clause([!a, b]);
/// cnf.add_clause([!a, !b]);
/// let (result, _, proof) = Solver::new(cnf.clone()).solve_certified(Budget::new());
/// assert_eq!(result, SatResult::Unsat);
/// let proof = proof.expect("certified solve always returns the log");
/// assert!(proof.is_concluded());
/// drat::check(&cnf, &proof).expect("solver proofs pass the checker");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DratProof {
    steps: Vec<ProofStep>,
    concluded: bool,
}

impl DratProof {
    /// An empty derivation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a proof from explicit steps (mainly for tests and tooling);
    /// the proof counts as concluded iff it contains an empty addition.
    pub fn from_steps(steps: Vec<ProofStep>) -> Self {
        let concluded = steps
            .iter()
            .any(|s| matches!(s, ProofStep::Add(lits) if lits.is_empty()));
        Self { steps, concluded }
    }

    /// The recorded steps, in emission order.
    pub fn steps(&self) -> &[ProofStep] {
        &self.steps
    }

    /// Total number of steps (additions + deletions).
    pub fn n_steps(&self) -> usize {
        self.steps.len()
    }

    /// Whether the derivation reached the empty clause. A cancelled or
    /// budget-exhausted solve leaves this `false`, and [`check`] rejects
    /// such a proof.
    pub fn is_concluded(&self) -> bool {
        self.concluded
    }

    /// Serializes to the textual DRAT format understood by external
    /// checkers (`drat-trim`, `gratgen`).
    pub fn to_drat_string(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for step in &self.steps {
            let lits = match step {
                ProofStep::Add(lits) => lits,
                ProofStep::Delete(lits) => {
                    out.push_str("d ");
                    lits
                }
            };
            for &l in lits {
                let _ = write!(out, "{} ", l.to_dimacs());
            }
            out.push_str("0\n");
        }
        out
    }

    /// Parses textual DRAT: one step per line, `d`-prefixed deletions,
    /// `0`-terminated DIMACS literals, `c` comments.
    ///
    /// # Errors
    ///
    /// Returns [`SatError::ParseDimacs`] for malformed tokens, a missing
    /// terminator, or trailing literals after the terminator.
    pub fn parse(text: &str) -> Result<Self, SatError> {
        let mut steps = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            let (is_delete, body) = match line.strip_prefix('d') {
                Some(rest) => (true, rest),
                None => (false, line),
            };
            let mut lits = Vec::new();
            let mut terminated = false;
            for token in body.split_whitespace() {
                if terminated {
                    return Err(SatError::ParseDimacs {
                        line: lineno + 1,
                        reason: "literals after the 0 terminator".into(),
                    });
                }
                let value: i64 = token.parse().map_err(|_| SatError::ParseDimacs {
                    line: lineno + 1,
                    reason: format!("invalid literal token {token:?}"),
                })?;
                if value == 0 {
                    terminated = true;
                } else {
                    lits.push(
                        Lit::from_dimacs(value).ok_or_else(|| SatError::ParseDimacs {
                            line: lineno + 1,
                            reason: format!("literal {value} out of range"),
                        })?,
                    );
                }
            }
            if !terminated {
                return Err(SatError::ParseDimacs {
                    line: lineno + 1,
                    reason: "proof step is not 0-terminated".into(),
                });
            }
            steps.push(if is_delete {
                ProofStep::Delete(lits)
            } else {
                ProofStep::Add(lits)
            });
        }
        Ok(Self::from_steps(steps))
    }
}

// Serde uses the textual DRAT form: it is the interchange format external
// checkers already understand, round-trips exactly through
// [`DratProof::parse`], and keeps `CallRecord` (which embeds an optional
// proof) derivable without exposing `ProofStep` internals as JSON.
impl serde::Serialize for DratProof {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_drat_string())
    }
}

impl serde::Deserialize for DratProof {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Str(text) => DratProof::parse(text)
                .map_err(|e| serde::Error::msg(format!("invalid DRAT text: {e}"))),
            _ => Err(serde::Error::msg("expected DRAT text string")),
        }
    }
}

impl ProofWriter for DratProof {
    fn add_clause(&mut self, lits: &[Lit]) {
        self.steps.push(ProofStep::Add(lits.to_vec()));
    }

    fn delete_clause(&mut self, lits: &[Lit]) {
        self.steps.push(ProofStep::Delete(lits.to_vec()));
    }

    fn conclude_unsat(&mut self) {
        self.steps.push(ProofStep::Add(Vec::new()));
        self.concluded = true;
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// Why a proof was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DratError {
    /// The proof never adds the empty clause — typical of a truncated file
    /// or a cancelled solve.
    NoEmptyClause,
    /// A step references a variable the formula does not have.
    LiteralOutOfRange {
        /// 0-based index of the offending step.
        step: usize,
    },
    /// A deletion names a clause that is not currently in the database.
    DeleteUnknownClause {
        /// 0-based index of the offending step.
        step: usize,
    },
    /// An addition (or the final empty clause) is not derivable by unit
    /// propagation from the clauses active at that point.
    NotRup {
        /// 0-based index of the offending step.
        step: usize,
    },
}

impl fmt::Display for DratError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoEmptyClause => {
                write!(f, "proof does not derive the empty clause (truncated?)")
            }
            Self::LiteralOutOfRange { step } => {
                write!(f, "step {step} references a variable outside the formula")
            }
            Self::DeleteUnknownClause { step } => {
                write!(
                    f,
                    "step {step} deletes a clause that is not in the database"
                )
            }
            Self::NotRup { step } => {
                write!(
                    f,
                    "step {step} is not a reverse-unit-propagation consequence"
                )
            }
        }
    }
}

impl Error for DratError {}

/// Work counters of one [`check`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct CheckStats {
    /// Clause additions in the (truncated) proof.
    pub additions: usize,
    /// Clause deletions in the (truncated) proof.
    pub deletions: usize,
    /// Additions that were core-marked and therefore RUP-verified.
    pub core_additions: usize,
    /// Unit propagations performed across all RUP checks.
    pub propagations: u64,
    /// Wall-clock time of the check.
    pub check_time: Duration,
}

/// How a forward-pass step resolved against the clause database.
enum Resolved {
    Add(usize),
    Delete(usize),
}

const UNASSIGNED: i8 = 0;

struct Checker {
    /// Clause literals, indexed by clause id (originals first, then proof
    /// additions in step order).
    lits: Vec<Vec<Lit>>,
    active: Vec<bool>,
    core: Vec<bool>,
    /// `watches[l.code()]` lists clauses (len ≥ 2) watching literal `l`.
    watches: Vec<Vec<usize>>,
    /// Ids of every unit clause ever created; activity is checked at use.
    units: Vec<usize>,
    assign: Vec<i8>,
    reason: Vec<Option<usize>>,
    trail: Vec<Lit>,
    seen: Vec<bool>,
    propagations: u64,
}

impl Checker {
    fn new(n_vars: usize) -> Self {
        Self {
            lits: Vec::new(),
            active: Vec::new(),
            core: Vec::new(),
            watches: vec![Vec::new(); 2 * n_vars],
            units: Vec::new(),
            assign: vec![UNASSIGNED; n_vars],
            reason: vec![None; n_vars],
            trail: Vec::new(),
            seen: vec![false; n_vars],
            propagations: 0,
        }
    }

    fn add_record(&mut self, lits: Vec<Lit>) -> usize {
        debug_assert!(!lits.is_empty());
        let id = self.lits.len();
        if lits.len() >= 2 {
            self.watches[lits[0].code() as usize].push(id);
            self.watches[lits[1].code() as usize].push(id);
        } else {
            self.units.push(id);
        }
        self.lits.push(lits);
        self.active.push(true);
        self.core.push(false);
        id
    }

    #[inline]
    fn value(&self, l: Lit) -> i8 {
        let v = self.assign[l.var().index() as usize];
        if l.is_positive() {
            v
        } else {
            -v
        }
    }

    fn enqueue(&mut self, l: Lit, reason: Option<usize>) {
        debug_assert_eq!(self.value(l), UNASSIGNED);
        let v = l.var().index() as usize;
        self.assign[v] = if l.is_positive() { 1 } else { -1 };
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Two-watched-literal unit propagation over the active clauses;
    /// returns a conflicting clause id if one arises.
    fn propagate(&mut self) -> Option<usize> {
        let mut qhead = 0;
        while qhead < self.trail.len() {
            let p = self.trail[qhead];
            qhead += 1;
            let false_lit = !p;
            let fcode = false_lit.code() as usize;
            let mut i = 0;
            'watches: while i < self.watches[fcode].len() {
                let cid = self.watches[fcode][i];
                if !self.active[cid] {
                    i += 1;
                    continue;
                }
                if self.lits[cid][0] == false_lit {
                    self.lits[cid].swap(0, 1);
                }
                debug_assert_eq!(self.lits[cid][1], false_lit);
                let first = self.lits[cid][0];
                if self.value(first) == 1 {
                    i += 1;
                    continue;
                }
                for k in 2..self.lits[cid].len() {
                    let cand = self.lits[cid][k];
                    if self.value(cand) != -1 {
                        self.lits[cid].swap(1, k);
                        self.watches[cand.code() as usize].push(cid);
                        self.watches[fcode].swap_remove(i);
                        continue 'watches;
                    }
                }
                if self.value(first) == -1 {
                    return Some(cid);
                }
                self.propagations += 1;
                self.enqueue(first, Some(cid));
                i += 1;
            }
        }
        None
    }

    /// Marks `cid` and, transitively, every reason clause of the current
    /// trail that contributed to it, as core.
    fn mark_core(&mut self, cid: usize) {
        self.core[cid] = true;
        let mut stack = self.lits[cid].clone();
        let mut touched = Vec::new();
        while let Some(l) = stack.pop() {
            let v = l.var().index() as usize;
            if self.seen[v] {
                continue;
            }
            self.seen[v] = true;
            touched.push(v);
            if let Some(rid) = self.reason[v] {
                self.core[rid] = true;
                stack.extend_from_slice(&self.lits[rid]);
            }
        }
        for v in touched {
            self.seen[v] = false;
        }
    }

    /// RUP check: is a conflict derivable by unit propagation after
    /// assuming the negation of every literal in `clause`? On success the
    /// conflict's antecedents are core-marked. The trail is fully undone
    /// either way.
    fn rup(&mut self, clause: &[Lit]) -> bool {
        debug_assert!(self.trail.is_empty());
        // `Some(Some(id))` = conflict on clause `id`; `Some(None)` =
        // conflict among the assumptions alone (a tautological clause).
        let mut conflict: Option<Option<usize>> = None;
        for &l in clause {
            match self.value(!l) {
                1 => {}
                -1 => {
                    conflict = Some(None);
                    break;
                }
                _ => self.enqueue(!l, None),
            }
        }
        if conflict.is_none() {
            for idx in 0..self.units.len() {
                let uid = self.units[idx];
                if !self.active[uid] {
                    continue;
                }
                let u = self.lits[uid][0];
                match self.value(u) {
                    1 => {}
                    -1 => {
                        conflict = Some(Some(uid));
                        break;
                    }
                    _ => self.enqueue(u, Some(uid)),
                }
            }
        }
        if conflict.is_none() {
            conflict = self.propagate().map(Some);
        }
        let derived = conflict.is_some();
        if let Some(Some(cid)) = conflict {
            self.mark_core(cid);
        }
        for i in 0..self.trail.len() {
            let v = self.trail[i].var().index() as usize;
            self.assign[v] = UNASSIGNED;
            self.reason[v] = None;
        }
        self.trail.clear();
        derived
    }
}

fn sorted_key(lits: &[Lit]) -> Vec<Lit> {
    let mut key = lits.to_vec();
    key.sort_unstable_by_key(|l| l.code());
    key
}

/// Verifies that `proof` is a valid DRAT (RUP fragment) refutation of
/// `cnf`, using backward checking with lazy core marking.
///
/// The proof must contain an empty-clause addition; steps after the first
/// one are ignored, exactly like `drat-trim`.
///
/// # Errors
///
/// Returns a [`DratError`] describing the first step that fails, or
/// [`DratError::NoEmptyClause`] when the derivation never concludes (e.g.
/// a truncated file, or a solve that was cancelled mid-run).
pub fn check(cnf: &CnfFormula, proof: &DratProof) -> Result<CheckStats, DratError> {
    let start = Instant::now();
    let n_vars = cnf.n_vars() as usize;
    let mut checker = Checker::new(n_vars);
    let mut stats = CheckStats::default();

    // Clause-shape index for deletion matching: sorted literals → ids of
    // active clauses with that shape (multiset semantics).
    let mut shapes: HashMap<Vec<Lit>, Vec<usize>> = HashMap::new();
    for clause in cnf.clauses() {
        let id = checker.add_record(clause.clone());
        shapes.entry(sorted_key(clause)).or_default().push(id);
    }

    // Forward pass: replay the derivation up to the empty clause.
    let mut resolved: Vec<Resolved> = Vec::new();
    let mut empty_at = None;
    for (s, step) in proof.steps().iter().enumerate() {
        match step {
            ProofStep::Add(lits) => {
                if lits.is_empty() {
                    empty_at = Some(s);
                    break;
                }
                if lits.iter().any(|l| l.var().index() as usize >= n_vars) {
                    return Err(DratError::LiteralOutOfRange { step: s });
                }
                let id = checker.add_record(lits.clone());
                shapes.entry(sorted_key(lits)).or_default().push(id);
                resolved.push(Resolved::Add(id));
                stats.additions += 1;
            }
            ProofStep::Delete(lits) => {
                if lits.iter().any(|l| l.var().index() as usize >= n_vars) {
                    return Err(DratError::LiteralOutOfRange { step: s });
                }
                let id = shapes
                    .get_mut(&sorted_key(lits))
                    .and_then(Vec::pop)
                    .ok_or(DratError::DeleteUnknownClause { step: s })?;
                checker.active[id] = false;
                resolved.push(Resolved::Delete(id));
                stats.deletions += 1;
            }
        }
    }
    let empty_at = empty_at.ok_or(DratError::NoEmptyClause)?;

    // The claimed empty clause must follow from the final database.
    if !checker.rup(&[]) {
        return Err(DratError::NotRup { step: empty_at });
    }

    // Backward pass: peel additions off, verifying the core ones against
    // exactly the database that was active when they were derived.
    for s in (0..empty_at).rev() {
        match resolved[s] {
            Resolved::Add(id) => {
                checker.active[id] = false;
                if checker.core[id] {
                    stats.core_additions += 1;
                    let clause = checker.lits[id].clone();
                    if !checker.rup(&clause) {
                        return Err(DratError::NotRup { step: s });
                    }
                }
            }
            Resolved::Delete(id) => checker.active[id] = true,
        }
    }

    stats.propagations = checker.propagations;
    stats.check_time = start.elapsed();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: i64) -> Lit {
        Lit::from_dimacs(v).expect("non-zero")
    }

    /// x1, ¬x1: empty clause is RUP with no derivation steps.
    #[test]
    fn contradictory_units_need_no_steps() {
        let mut cnf = CnfFormula::new();
        let a = cnf.new_lit();
        cnf.add_clause([a]);
        cnf.add_clause([!a]);
        let proof = DratProof::from_steps(vec![ProofStep::Add(Vec::new())]);
        let stats = check(&cnf, &proof).expect("trivially refutable");
        assert_eq!(stats.additions, 0);
    }

    #[test]
    fn hand_built_rup_chain_checks() {
        // (a ∨ b)(a ∨ ¬b)(¬a ∨ b)(¬a ∨ ¬b): derive (a), then empty.
        let cnf = crate::dimacs::parse("p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n").unwrap();
        let proof = DratProof::from_steps(vec![
            ProofStep::Add(vec![lit(1)]),
            ProofStep::Add(Vec::new()),
        ]);
        let stats = check(&cnf, &proof).expect("valid RUP chain");
        assert_eq!(stats.core_additions, 1);
    }

    #[test]
    fn non_rup_addition_is_rejected() {
        // (1 ∨ 2)(1 ∨ ¬2) implies 1, so the formula is SAT and (¬1) is not
        // RUP — assuming 1 satisfies both clauses with no conflict. The
        // empty clause *is* RUP once (¬1) is (bogusly) in the database,
        // which core-marks (¬1); the backward pass must then reject it.
        let cnf = crate::dimacs::parse("p cnf 2 2\n1 2 0\n1 -2 0\n").unwrap();
        let proof = DratProof::from_steps(vec![
            ProofStep::Add(vec![lit(-1)]),
            ProofStep::Add(Vec::new()),
        ]);
        assert_eq!(check(&cnf, &proof), Err(DratError::NotRup { step: 0 }));
    }

    #[test]
    fn non_core_bogus_addition_is_ignored_like_drat_trim() {
        // A redundant (even bogus) lemma that no later step depends on is
        // never verified — the lazy-core contract, matching drat-trim.
        let cnf = crate::dimacs::parse("p cnf 2 3\n1 0\n-1 2 0\n-1 -2 0\n").unwrap();
        let proof = DratProof::from_steps(vec![
            ProofStep::Add(vec![lit(-1), lit(2)]), // duplicate, harmless
            ProofStep::Add(Vec::new()),
        ]);
        // Empty clause conflicts via unit (1) and the *original* clauses;
        // whether the duplicate gets core-marked is resolution-order luck,
        // but the proof must check either way.
        check(&cnf, &proof).expect("redundant lemma never invalidates a proof");
    }

    #[test]
    fn unconcluded_proof_is_rejected() {
        let cnf = crate::dimacs::parse("p cnf 1 2\n1 0\n-1 0\n").unwrap();
        let proof = DratProof::new();
        assert_eq!(check(&cnf, &proof), Err(DratError::NoEmptyClause));
    }

    #[test]
    fn delete_of_unknown_clause_is_rejected() {
        let cnf = crate::dimacs::parse("p cnf 1 2\n1 0\n-1 0\n").unwrap();
        let proof = DratProof::from_steps(vec![
            ProofStep::Delete(vec![lit(1), lit(-1)]),
            ProofStep::Add(Vec::new()),
        ]);
        assert_eq!(
            check(&cnf, &proof),
            Err(DratError::DeleteUnknownClause { step: 0 })
        );
    }

    #[test]
    fn deleting_a_needed_clause_breaks_the_proof() {
        let cnf = crate::dimacs::parse("p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n").unwrap();
        let proof = DratProof::from_steps(vec![
            ProofStep::Delete(vec![lit(-1), lit(2)]),
            ProofStep::Delete(vec![lit(-1), lit(-2)]),
            ProofStep::Add(vec![lit(1)]),
            ProofStep::Add(Vec::new()),
        ]);
        // With both ¬1-clauses deleted, (1) is still RUP? Assuming ¬1
        // propagates 2 (from 1 2) and ¬2 (from 1 -2): conflict, so (1) is
        // fine — but the empty clause then needs a conflict from {1 2,
        // 1 -2, 1}: assigning 1 satisfies everything. Rejected at the end.
        assert!(matches!(
            check(&cnf, &proof),
            Err(DratError::NotRup { step: 3 })
        ));
    }

    #[test]
    fn drat_text_round_trip() {
        let proof = DratProof::from_steps(vec![
            ProofStep::Add(vec![lit(1), lit(-2)]),
            ProofStep::Delete(vec![lit(1), lit(-2)]),
            ProofStep::Add(Vec::new()),
        ]);
        let text = proof.to_drat_string();
        assert_eq!(text, "1 -2 0\nd 1 -2 0\n0\n");
        let parsed = DratProof::parse(&text).expect("round trip");
        assert_eq!(parsed, proof);
        assert!(parsed.is_concluded());
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(DratProof::parse("1 2\n").is_err(), "missing terminator");
        assert!(DratProof::parse("1 x 0\n").is_err(), "bad token");
        assert!(DratProof::parse("1 0 2\n").is_err(), "trailing literal");
        let ok = DratProof::parse("c comment\n\nd 1 0\n0\n").expect("comments and blanks");
        assert_eq!(ok.n_steps(), 2);
    }

    #[test]
    fn literal_out_of_range_is_rejected() {
        let cnf = crate::dimacs::parse("p cnf 1 2\n1 0\n-1 0\n").unwrap();
        let proof = DratProof::from_steps(vec![
            ProofStep::Add(vec![lit(5)]),
            ProofStep::Add(Vec::new()),
        ]);
        assert_eq!(
            check(&cnf, &proof),
            Err(DratError::LiteralOutOfRange { step: 0 })
        );
    }
}
