//! Inprocessing: clause-database simplification at restart boundaries.
//!
//! A pass runs in three phases, all at decision level 0:
//!
//! 1. **Vivification** — each candidate clause is temporarily detached and
//!    its literals' negations are asserted one by one with real unit
//!    propagation. A conflict, an implied literal, or a falsified literal
//!    shrinks the clause in place.
//! 2. **Subsumption / self-subsuming resolution and bounded variable
//!    elimination** — the live database (long clauses *and* the binary
//!    implication layer) is snapshotted into a working set with occurrence
//!    lists; subsumed clauses are dropped, self-subsuming resolutions
//!    strengthen clauses, and variables whose resolvent set does not grow
//!    the database are eliminated (SatELite-style), recording the removed
//!    clauses for model reconstruction.
//! 3. **Rebuild** — watches and binary lists are reconstructed from the
//!    surviving set and the whole trail is re-propagated from scratch,
//!    restoring every solver invariant.
//!
//! # DRAT coverage
//!
//! Every step is logged so `--certify` keeps checking:
//!
//! - Implied level-0 literals are logged as unit additions *before* any
//!   deletion can remove the clauses that derive them (each unit is RUP:
//!   its negation propagates to a conflict along the recorded reasons).
//! - A vivified or strengthened clause is a subset of a clause still in
//!   the database, with every dropped literal falsified by unit
//!   propagation from the asserted negations — RUP by construction. The
//!   candidate is detached during the probe precisely so the derivation
//!   never passes through the clause being rewritten.
//! - A BVE resolvent `(C ∖ {v}) ∪ (D ∖ {¬v})` is RUP while its parents
//!   are present: negating it makes `C` propagate `v` and falsifies `D`.
//! - Additions are always emitted before the deletions they justify, and
//!   deletions are emitted for exact clauses previously in the database
//!   (the checker matches sorted literal multisets).
//!
//! Subsumption and plain deletion only ever *remove* clauses, which can
//! never invalidate a later RUP derivation recorded by the solver, because
//! the solver's own database shrinks in lockstep with the proof's.
//!
//! # Safety invariants
//!
//! - Frozen variables (assumptions, incremental guard literals) are never
//!   eliminated; `solve_under_assumptions` freezes its current assumption
//!   set as a backstop and long-lived callers freeze their full guard set
//!   up front.
//! - Eliminated variables are never decided, never imported from the
//!   clause bus, and their model values are reconstructed in
//!   `extract_model` from the recorded elimination stack.

use super::{Clause, Reason, Solver, Watch, UNASSIGNED};
use crate::{Budget, Lit, Var};

/// Max candidate clauses probed by vivification per pass.
const VIVIFY_MAX_CLAUSES: usize = 256;
/// Max trail pushes vivification may spend per pass.
const VIVIFY_PROP_BUDGET: usize = 20_000;
/// Max subsumption candidate comparisons per pass.
const SUBSUME_CHECK_BUDGET: usize = 200_000;
/// A variable with more occurrences than this per polarity is never an
/// elimination candidate.
const BVE_MAX_OCC: usize = 16;
/// Max `pos × neg` occurrence product considered for elimination.
const BVE_MAX_PRODUCT: usize = 64;
/// Resolvents longer than this veto the elimination.
const BVE_MAX_RESOLVENT_LEN: usize = 16;
/// Max resolvent constructions per pass.
const BVE_CHECK_BUDGET: usize = 100_000;

/// A snapshotted clause in the phase-2 working set. Literals are sorted
/// by code and deduplicated, which makes subset tests and resolution
/// linear-time.
struct WorkClause {
    lits: Vec<Lit>,
    learnt: bool,
    activity: f32,
    lbd: u32,
    removed: bool,
    sig: u64,
}

/// 64-bit variable-set signature: `sig(a) & !sig(b) != 0` proves `a ⊄ b`
/// over variables, pruning most subset tests in one AND.
fn var_sig(lits: &[Lit]) -> u64 {
    lits.iter()
        .fold(0u64, |s, l| s | 1u64 << (l.var().index() % 64))
}

/// Binary-search membership in a code-sorted literal slice.
fn contains(sorted: &[Lit], l: Lit) -> bool {
    sorted.binary_search_by_key(&l.code(), |x| x.code()).is_ok()
}

enum Check {
    /// `base` subsumes the candidate outright.
    Subsumed,
    /// Self-subsuming resolution: the candidate can drop this literal.
    Strengthen(Lit),
    None,
}

/// Does `base` subsume `other`, or strengthen it by one literal?
fn subsume_check(base: &[Lit], other: &[Lit]) -> Check {
    let mut strengthen: Option<Lit> = None;
    for &l in base {
        if contains(other, l) {
            continue;
        }
        if strengthen.is_none() && contains(other, !l) {
            strengthen = Some(!l);
            continue;
        }
        return Check::None;
    }
    match strengthen {
        Some(l) => Check::Strengthen(l),
        None => Check::Subsumed,
    }
}

/// The resolvent of `c` and `d` on `pivot` (`pivot ∈ c`, `¬pivot ∈ d`),
/// sorted and deduplicated; `None` if tautological.
fn resolve(c: &[Lit], d: &[Lit], pivot: Lit) -> Option<Vec<Lit>> {
    let mut r: Vec<Lit> = c.iter().copied().filter(|&l| l != pivot).collect();
    for &l in d {
        if l != !pivot && !r.contains(&l) {
            r.push(l);
        }
    }
    if r.iter().any(|&l| r.contains(&!l)) {
        return None;
    }
    r.sort_by_key(|l| l.code());
    Some(r)
}

impl Solver {
    /// Runs an inprocessing pass if the budget allows it and enough
    /// conflicts have accumulated since the last one. Called at call entry
    /// and at every restart, always at decision level 0.
    pub(super) fn maybe_inprocess(&mut self, budget: &Budget) {
        if !budget.inprocess() || !self.ok {
            return;
        }
        if self.stats.conflicts < self.next_inprocess {
            return;
        }
        self.inprocess_now();
        // Geometric back-off keeps inprocessing a vanishing fraction of
        // total search effort on long runs.
        self.inprocess_interval = self.inprocess_interval.saturating_mul(3) / 2;
        self.next_inprocess = self.stats.conflicts + self.inprocess_interval;
    }

    /// Runs one full inprocessing pass immediately.
    ///
    /// Public as a deterministic hook for tests and tools; normal solving
    /// schedules passes automatically at restart boundaries. Must be
    /// called at decision level 0 (between solve calls qualifies).
    pub fn inprocess_now(&mut self) {
        assert_eq!(
            self.current_level(),
            0,
            "inprocessing only runs at decision level 0"
        );
        if !self.ok {
            return;
        }
        if self.propagate().is_some() {
            self.ok = false;
            return;
        }
        self.log_level0_units();
        self.vivify();
        if self.ok {
            // Vivification's trailing propagate can derive further level-0
            // facts; log them while their reason clauses are still alive,
            // before phase 2 deletes any clause that derives them.
            self.log_level0_units();
            self.subsume_and_eliminate();
        }
    }

    /// Emits unit additions for implied level-0 literals not yet logged.
    ///
    /// Must run before any deletion that could remove a deriving clause:
    /// afterwards the units carry the facts in the proof database
    /// themselves, so the derivers become deletable.
    fn log_level0_units(&mut self) {
        if self.proof.is_none() {
            self.l0_units_logged = self.trail.len();
            return;
        }
        for i in self.l0_units_logged..self.trail.len() {
            let l = self.trail[i];
            // Decision-reason level-0 literals are original or previously
            // logged unit clauses — already in the proof database.
            if !matches!(self.reason[l.var().index() as usize], Reason::Decision) {
                self.proof_add(&[l]);
            }
        }
        self.l0_units_logged = self.trail.len();
    }

    /// Removes this clause's two watch entries (positions 0 and 1).
    fn detach_watches(&mut self, idx: usize) {
        for k in 0..2 {
            let l = self.clauses[idx].lits[k];
            let ws = &mut self.watches[l.code() as usize];
            if let Some(p) = ws.iter().position(|w| w.clause as usize == idx) {
                ws.swap_remove(p);
            }
        }
    }

    /// Re-adds watch entries on the clause's first two literals.
    fn attach_watches(&mut self, idx: usize) {
        let (l0, l1) = (self.clauses[idx].lits[0], self.clauses[idx].lits[1]);
        self.watches[l0.code() as usize].push(Watch {
            clause: idx as u32,
            blocker: l1,
        });
        self.watches[l1.code() as usize].push(Watch {
            clause: idx as u32,
            blocker: l0,
        });
    }

    /// Phase 1: clause vivification with the solver's own propagation.
    fn vivify(&mut self) {
        let n = self.clauses.len();
        if n == 0 {
            return;
        }
        let mut prop_budget = VIVIFY_PROP_BUDGET;
        let mut examined = 0usize;
        // Rotate the starting point across passes so long databases get
        // full coverage over time (deterministic: driven by the conflict
        // counter, not a clock).
        let start = self.stats.conflicts as usize % n;
        let mut step = 0usize;
        while step < n && examined < VIVIFY_MAX_CLAUSES && prop_budget > 0 && self.ok {
            let idx = (start + step) % n;
            step += 1;
            if self.clauses[idx].deleted || self.clauses[idx].lits.len() < 3 {
                continue;
            }
            examined += 1;
            self.vivify_one(idx, &mut prop_budget);
        }
        if self.ok && self.propagate().is_some() {
            self.ok = false;
        }
    }

    /// Probes one clause. On a successful shrink the old clause is deleted
    /// and the shortened one installed (as a unit, binary, or new long
    /// clause).
    fn vivify_one(&mut self, idx: usize, prop_budget: &mut usize) {
        let lits = self.clauses[idx].lits.clone();
        // Detach for the probe: the clause must not propagate in its own
        // test, and the shrunk clause must be RUP without it.
        self.detach_watches(idx);

        let mut kept: Vec<Lit> = Vec::with_capacity(lits.len());
        let mut satisfied_at_top = false;
        let mut conclusive = false; // conflict or implied literal
        let mut dropped = false;
        let mut exhausted = false;
        self.trail_lim.push(self.trail.len()); // one probe level
        for &l in &lits {
            match self.value(l) {
                1 => {
                    if self.level[l.var().index() as usize] == 0 {
                        // Permanently satisfied: delete instead of shrink.
                        satisfied_at_top = true;
                    } else {
                        // The asserted prefix implies `l`: the clause
                        // shrinks to the prefix plus `l`.
                        kept.push(l);
                        conclusive = true;
                    }
                    break;
                }
                -1 => {
                    // Falsified (at level 0 or by the prefix): drop it.
                    dropped = true;
                }
                _ => {
                    kept.push(l);
                    self.enqueue(!l, Reason::Decision);
                    let before = self.trail.len();
                    let conflict = self.propagate().is_some();
                    *prop_budget = prop_budget.saturating_sub(self.trail.len() - before + 1);
                    if conflict {
                        conclusive = true;
                        break;
                    }
                    if *prop_budget == 0 {
                        exhausted = true;
                        break;
                    }
                }
            }
        }
        self.backtrack_to(0);

        if satisfied_at_top {
            let old = std::mem::take(&mut self.clauses[idx].lits);
            self.proof_delete(&old);
            self.clauses[idx].deleted = true;
            return;
        }
        // A shrink is only valid when the probe finished its case
        // analysis: a conflict / implied literal is conclusive on its own,
        // dropped literals need the whole clause examined.
        let valid = (conclusive || (dropped && !exhausted)) && kept.len() < lits.len();
        if !valid || kept.is_empty() {
            self.attach_watches(idx);
            return;
        }

        self.stats.vivified_clauses += 1;
        self.proof_add(&kept);
        let old = std::mem::take(&mut self.clauses[idx].lits);
        self.proof_delete(&old);
        self.clauses[idx].deleted = true;
        match kept.len() {
            1 => match self.value(kept[0]) {
                -1 => self.ok = false,
                UNASSIGNED => {
                    self.enqueue(kept[0], Reason::Decision);
                    if self.propagate().is_some() {
                        self.ok = false;
                    } else {
                        // The cascade's facts must enter the proof before a
                        // later probe deletes a deriving clause as
                        // satisfied-at-top; reasons are intact right here.
                        self.log_level0_units();
                    }
                }
                _ => {}
            },
            2 => {
                self.bin_implications[kept[0].code() as usize].push(kept[1]);
                self.bin_implications[kept[1].code() as usize].push(kept[0]);
            }
            _ => {
                let learnt = self.clauses[idx].learnt;
                let activity = self.clauses[idx].activity;
                let lbd = self.clauses[idx].lbd.min(kept.len() as u32);
                let new_idx = self.clauses.len() as u32;
                self.watches[kept[0].code() as usize].push(Watch {
                    clause: new_idx,
                    blocker: kept[1],
                });
                self.watches[kept[1].code() as usize].push(Watch {
                    clause: new_idx,
                    blocker: kept[0],
                });
                self.clauses.push(Clause {
                    lits: kept,
                    learnt,
                    deleted: false,
                    activity,
                    lbd,
                });
            }
        }
    }

    /// Phase 2 + 3: snapshot, subsume/strengthen/eliminate, rebuild.
    fn subsume_and_eliminate(&mut self) {
        debug_assert_eq!(self.current_level(), 0);
        let mut work: Vec<WorkClause> = Vec::with_capacity(self.clauses.len());

        // ---- snapshot long clauses, simplified against the trail ----
        for idx in 0..self.clauses.len() {
            if self.clauses[idx].deleted {
                continue;
            }
            let lits = self.clauses[idx].lits.clone();
            let mut satisfied = false;
            let mut reduced: Vec<Lit> = Vec::with_capacity(lits.len());
            for &l in &lits {
                match self.value(l) {
                    1 => {
                        satisfied = true;
                        break;
                    }
                    -1 => {}
                    _ => reduced.push(l),
                }
            }
            if satisfied {
                self.proof_delete(&lits);
                continue;
            }
            reduced.sort_by_key(|l| l.code());
            reduced.dedup();
            // Same-variable neighbours after sort+dedup = tautology.
            if reduced.windows(2).any(|w| w[0].var() == w[1].var()) {
                self.proof_delete(&lits);
                continue;
            }
            debug_assert!(reduced.len() >= 2, "watch invariant: ≥2 unassigned lits");
            if reduced.len() < lits.len() {
                self.proof_add(&reduced);
                self.proof_delete(&lits);
            }
            let sig = var_sig(&reduced);
            work.push(WorkClause {
                lits: reduced,
                learnt: self.clauses[idx].learnt,
                activity: self.clauses[idx].activity,
                lbd: self.clauses[idx].lbd,
                removed: false,
                sig,
            });
        }

        // ---- snapshot the binary layer (deduplicated) ----
        let mut bins: Vec<(Lit, Lit)> = Vec::new();
        for code in 0..self.bin_implications.len() {
            let l = Lit::from_code(code as u32);
            for &p in &self.bin_implications[code] {
                if l.code() < p.code() {
                    bins.push((l, p));
                }
            }
        }
        bins.sort_by_key(|&(a, b)| (a.code(), b.code()));
        let mut prev: Option<(Lit, Lit)> = None;
        for (a, b) in bins {
            if prev == Some((a, b)) {
                // Duplicate copy of the same binary: delete the extra.
                self.proof_delete(&[a, b]);
                continue;
            }
            prev = Some((a, b));
            if self.value(a) == 1 || self.value(b) == 1 || a.var() == b.var() {
                // Satisfied at level 0, or the tautology (x ∨ ¬x).
                self.proof_delete(&[a, b]);
                continue;
            }
            work.push(WorkClause {
                lits: vec![a, b],
                learnt: false,
                activity: 0.0,
                lbd: 2,
                removed: false,
                sig: var_sig(&[a, b]),
            });
        }

        // ---- occurrence lists ----
        let mut occ: Vec<Vec<usize>> = vec![Vec::new(); 2 * self.n_vars];
        for (i, wc) in work.iter().enumerate() {
            for &l in &wc.lits {
                occ[l.code() as usize].push(i);
            }
        }

        // ---- forward subsumption + self-subsuming resolution ----
        let mut steps = SUBSUME_CHECK_BUDGET;
        let initial = work.len();
        let mut queue: std::collections::VecDeque<usize> = (0..initial).collect();
        let mut queued: Vec<bool> = vec![true; initial];
        'queue: while let Some(i) = queue.pop_front() {
            if steps == 0 || !self.ok {
                break;
            }
            queued[i] = false;
            if work[i].removed {
                continue;
            }
            let base = work[i].lits.clone();
            let base_sig = work[i].sig;
            // Scan the sparsest variable's occurrence lists, both
            // polarities: that covers every subsumption and every
            // self-subsuming resolution `base` can justify.
            let best = base
                .iter()
                .copied()
                .min_by_key(|l| occ[l.code() as usize].len() + occ[(!*l).code() as usize].len())
                .expect("work clauses are non-empty");
            for polarity in [best, !best] {
                for k in 0..occ[polarity.code() as usize].len() {
                    let j = occ[polarity.code() as usize][k];
                    if j == i || work[j].removed {
                        continue;
                    }
                    if work[j].lits.len() < base.len() || base_sig & !work[j].sig != 0 {
                        continue;
                    }
                    steps = steps.saturating_sub(1);
                    if steps == 0 {
                        break 'queue;
                    }
                    match subsume_check(&base, &work[j].lits) {
                        Check::Subsumed => {
                            // Subsuming an irredundant clause makes the
                            // subsumer irredundant: it now carries the
                            // constraint alone.
                            if !work[j].learnt {
                                work[i].learnt = false;
                            }
                            let old = std::mem::take(&mut work[j].lits);
                            work[j].removed = true;
                            self.proof_delete(&old);
                            self.stats.subsumed_clauses += 1;
                        }
                        Check::Strengthen(drop_lit) => {
                            let mut new_lits = work[j].lits.clone();
                            new_lits.retain(|&x| x != drop_lit);
                            if !new_lits.is_empty() {
                                self.proof_add(&new_lits);
                            }
                            self.proof_delete(&work[j].lits);
                            self.stats.strengthened_clauses += 1;
                            match new_lits.len() {
                                0 => {
                                    work[j].removed = true;
                                    self.ok = false;
                                    break 'queue;
                                }
                                1 => {
                                    work[j].removed = true;
                                    self.work_assign_unit(new_lits[0], &mut work, &mut occ);
                                    // The cascade may have rewritten
                                    // anything, including `base`; start
                                    // over from the queue.
                                    if !queued[i] && !work[i].removed {
                                        queued[i] = true;
                                        queue.push_back(i);
                                    }
                                    continue 'queue;
                                }
                                _ => {
                                    work[j].lits = new_lits;
                                    work[j].sig = var_sig(&work[j].lits);
                                    if !queued[j] {
                                        queued[j] = true;
                                        queue.push_back(j);
                                    }
                                }
                            }
                        }
                        Check::None => {}
                    }
                }
            }
        }

        // ---- bounded variable elimination ----
        if self.ok {
            self.eliminate_vars(&mut work, &mut occ);
        }
        if !self.ok {
            // UNSAT was derived mid-phase: the emitted proof is complete
            // and consistent, and no further search will read the
            // database, so skip the rebuild.
            return;
        }

        // ---- rebuild watches and binary lists from the survivors ----
        self.clauses.clear();
        for ws in &mut self.watches {
            ws.clear();
        }
        for bs in &mut self.bin_implications {
            bs.clear();
        }
        for wc in work.into_iter().filter(|w| !w.removed) {
            debug_assert!(wc.lits.len() >= 2);
            debug_assert!(
                wc.lits.iter().all(|&l| self.value(l) == UNASSIGNED),
                "survivors are fully simplified against the trail"
            );
            if wc.lits.len() == 2 {
                self.bin_implications[wc.lits[0].code() as usize].push(wc.lits[1]);
                self.bin_implications[wc.lits[1].code() as usize].push(wc.lits[0]);
            } else {
                let idx = self.clauses.len() as u32;
                self.watches[wc.lits[0].code() as usize].push(Watch {
                    clause: idx,
                    blocker: wc.lits[1],
                });
                self.watches[wc.lits[1].code() as usize].push(Watch {
                    clause: idx,
                    blocker: wc.lits[0],
                });
                self.clauses.push(Clause {
                    lits: wc.lits,
                    learnt: wc.learnt,
                    deleted: false,
                    activity: wc.activity,
                    lbd: wc.lbd,
                });
            }
        }
        // Old clause indices are gone; level-0 facts need no live reason
        // (conflict analysis never dereferences level-0 reasons).
        for k in 0..self.trail.len() {
            let v = self.trail[k].var().index() as usize;
            self.reason[v] = Reason::Decision;
        }
        // Re-propagate the whole trail to restore the watch invariant and
        // surface any conflict the rewrite made explicit.
        self.qhead = 0;
        if self.propagate().is_some() {
            self.ok = false;
        }
    }

    /// Assigns a derived unit at level 0 and simplifies the working set
    /// against it (and any units that cascade from that).
    ///
    /// The caller has already emitted the unit's addition to the proof.
    fn work_assign_unit(&mut self, unit: Lit, work: &mut [WorkClause], occ: &mut [Vec<usize>]) {
        let mut pending = vec![unit];
        while let Some(l) = pending.pop() {
            match self.value(l) {
                1 => continue,
                -1 => {
                    self.ok = false;
                    return;
                }
                _ => self.enqueue(l, Reason::Decision),
            }
            // Clauses containing `l` are satisfied.
            for k in 0..occ[l.code() as usize].len() {
                let j = occ[l.code() as usize][k];
                if work[j].removed || !contains(&work[j].lits, l) {
                    continue;
                }
                let old = std::mem::take(&mut work[j].lits);
                work[j].removed = true;
                self.proof_delete(&old);
            }
            // Clauses containing `¬l` lose that literal.
            let neg = !l;
            for k in 0..occ[neg.code() as usize].len() {
                let j = occ[neg.code() as usize][k];
                if work[j].removed || !contains(&work[j].lits, neg) {
                    continue;
                }
                let mut new_lits = work[j].lits.clone();
                new_lits.retain(|&x| x != neg);
                if !new_lits.is_empty() {
                    self.proof_add(&new_lits);
                }
                self.proof_delete(&work[j].lits);
                match new_lits.len() {
                    0 => {
                        work[j].removed = true;
                        self.ok = false;
                        return;
                    }
                    1 => {
                        work[j].removed = true;
                        pending.push(new_lits[0]);
                    }
                    _ => {
                        work[j].lits = new_lits;
                        work[j].sig = var_sig(&work[j].lits);
                    }
                }
            }
        }
    }

    /// SatELite-style bounded variable elimination over the working set.
    fn eliminate_vars(&mut self, work: &mut Vec<WorkClause>, occ: &mut Vec<Vec<usize>>) {
        let mut bve_budget = BVE_CHECK_BUDGET;
        // Cheapest-first: variables with the smallest occurrence footprint
        // are the most likely to eliminate without growth.
        let mut vars: Vec<u32> = (0..self.n_vars as u32).collect();
        vars.sort_by_key(|&v| {
            let p = Var::from_index(v).lit(true);
            occ[p.code() as usize].len() + occ[(!p).code() as usize].len()
        });
        for v in vars {
            if !self.ok || bve_budget == 0 {
                break;
            }
            let i = v as usize;
            if self.frozen[i] || self.eliminated[i] || self.assign[i] != UNASSIGNED {
                continue;
            }
            let pl = Var::from_index(v).lit(true);
            let live = |work: &Vec<WorkClause>, occ: &Vec<Vec<usize>>, l: Lit| -> Vec<usize> {
                occ[l.code() as usize]
                    .iter()
                    .copied()
                    .filter(|&j| !work[j].removed && contains(&work[j].lits, l))
                    .collect()
            };
            let pos = live(work, occ, pl);
            let neg = live(work, occ, !pl);
            if pos.is_empty() && neg.is_empty() {
                // Pure in neither polarity nor constrained: the variable
                // occurs nowhere — nothing to record, decide() may still
                // pick it freely.
                continue;
            }
            if pos.len() > BVE_MAX_OCC
                || neg.len() > BVE_MAX_OCC
                || pos.len() * neg.len() > BVE_MAX_PRODUCT
            {
                continue;
            }
            bve_budget = bve_budget.saturating_sub(pos.len() * neg.len() + 1);

            let mut resolvents: Vec<Vec<Lit>> = Vec::new();
            let mut too_big = false;
            'pairs: for &c in &pos {
                for &d in &neg {
                    if let Some(r) = resolve(&work[c].lits, &work[d].lits, pl) {
                        if r.len() > BVE_MAX_RESOLVENT_LEN {
                            too_big = true;
                            break 'pairs;
                        }
                        resolvents.push(r);
                    }
                }
            }
            // No-growth rule: eliminating must not enlarge the database.
            if too_big || resolvents.len() > pos.len() + neg.len() {
                continue;
            }

            // Commit. Resolvent additions precede parent deletions so
            // every resolvent is RUP while its parents are present.
            for r in &resolvents {
                let lits = r.clone();
                if !lits.is_empty() {
                    self.proof_add(&lits);
                }
            }
            let removed_clauses: Vec<Vec<Lit>> = pos
                .iter()
                .chain(neg.iter())
                .map(|&j| work[j].lits.clone())
                .collect();
            for &j in pos.iter().chain(neg.iter()) {
                let old = std::mem::take(&mut work[j].lits);
                work[j].removed = true;
                self.proof_delete(&old);
            }
            self.elim_stack.push((pl, removed_clauses));
            self.eliminated[i] = true;
            self.stats.eliminated_vars += 1;

            // Resolvents are irredundant: their parents are gone, so they
            // alone carry the constraint (never give them to reduce_db).
            let mut units: Vec<Lit> = Vec::new();
            for r in resolvents {
                match r.len() {
                    0 => {
                        self.ok = false;
                        break;
                    }
                    1 => units.push(r[0]),
                    _ => {
                        let sig = var_sig(&r);
                        let j = work.len();
                        for &l in &r {
                            occ[l.code() as usize].push(j);
                        }
                        work.push(WorkClause {
                            lbd: r.len() as u32,
                            lits: r,
                            learnt: false,
                            activity: 0.0,
                            removed: false,
                            sig,
                        });
                    }
                }
            }
            for u in units {
                if self.ok {
                    self.work_assign_unit(u, work, occ);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{drat, Budget, CnfFormula, DratProof, SatResult, Solver};

    #[test]
    fn subsumption_drops_a_duplicate_clause() {
        let mut cnf = CnfFormula::new();
        let (a, b, c) = {
            let v = cnf.new_lits(3);
            (v[0], v[1], v[2])
        };
        // An exact duplicate is the one redundancy vivification cannot
        // shrink away first, so it must fall to subsumption.
        cnf.add_clause([a, b, c]);
        cnf.add_clause([a, b, c]);
        cnf.add_clause([!a, !b, c]);
        let mut solver = Solver::new(cnf);
        solver.inprocess_now();
        assert!(solver.stats().subsumed_clauses >= 1, "{}", solver.stats());
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn self_subsuming_resolution_strengthens() {
        let mut cnf = CnfFormula::new();
        let v = cnf.new_lits(4);
        let (a, b, c, d) = (v[0], v[1], v[2], v[3]);
        // (a b c) and (¬a b c) strengthen each other to (b c); the d
        // clauses keep every variable live.
        cnf.add_clause([a, b, c]);
        cnf.add_clause([!a, b, c]);
        cnf.add_clause([a, !b, d]);
        cnf.add_clause([!a, !c, !d]);
        let mut solver = Solver::new(cnf);
        solver.inprocess_now();
        assert!(
            solver.stats().strengthened_clauses >= 1,
            "{}",
            solver.stats()
        );
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn vivification_shrinks_an_implied_clause() {
        let mut cnf = CnfFormula::new();
        let v = cnf.new_lits(5);
        let (a, b, c, d, e) = (v[0], v[1], v[2], v[3], v[4]);
        // ¬a → b, so (a b c) vivifies to (a b). Extra clauses keep the
        // database from collapsing to nothing before the probe runs.
        cnf.add_clause([a, b]);
        cnf.add_clause([a, b, c]);
        cnf.add_clause([c, d, e]);
        cnf.add_clause([!c, !d, e]);
        cnf.add_clause([!a, !b, !e]);
        let mut solver = Solver::new(cnf);
        solver.inprocess_now();
        assert!(solver.stats().vivified_clauses >= 1, "{}", solver.stats());
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn bve_eliminates_and_reconstructs_the_model() {
        let mut cnf = CnfFormula::new();
        let v = cnf.new_lits(3);
        let (x, a, b) = (v[0], v[1], v[2]);
        cnf.add_clause([x, a]);
        cnf.add_clause([!x, b]);
        cnf.add_clause([!a, !b, x]);
        let originals = [vec![x, a], vec![!x, b], vec![!a, !b, x]];
        let mut solver = Solver::new(cnf);
        solver.inprocess_now();
        assert!(solver.stats().eliminated_vars >= 1, "{}", solver.stats());
        match solver.solve() {
            SatResult::Sat(m) => {
                for c in &originals {
                    assert!(
                        c.iter().any(|&l| m.value(l)),
                        "reconstructed model violates {c:?}"
                    );
                }
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn frozen_vars_are_never_eliminated() {
        let mut cnf = CnfFormula::new();
        let v = cnf.new_lits(3);
        let (x, a, b) = (v[0], v[1], v[2]);
        cnf.add_clause([x, a]);
        cnf.add_clause([!x, b]);
        cnf.add_clause([!a, !b, x]);
        let mut solver = Solver::new(cnf);
        solver.freeze_vars([x.var(), a.var(), b.var()]);
        solver.inprocess_now();
        assert_eq!(solver.stats().eliminated_vars, 0);
        assert!(!solver.is_eliminated(x.var()));
    }

    #[test]
    fn inprocessed_pigeonhole_proof_checks() {
        // PHP(3,2): 3 pigeons, 2 holes — UNSAT. The pass runs with the
        // proof log attached, so every rewrite lands in the proof and the
        // backward checker must still accept the final refutation.
        let mut cnf = CnfFormula::new();
        let p: Vec<Vec<crate::Lit>> = (0..3).map(|_| cnf.new_lits(2)).collect();
        for row in &p {
            cnf.add_clause(row.clone());
        }
        for h in 0..2 {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    cnf.add_clause([!p[i][h], !p[j][h]]);
                }
            }
        }
        let mut solver = Solver::new(cnf.clone()).with_proof_writer(Box::<DratProof>::default());
        solver.inprocess_now();
        let (result, _, proof) = solver.solve_certified(Budget::new());
        assert!(result.is_unsat());
        let proof = proof.expect("log present");
        assert!(proof.is_concluded());
        drat::check(&cnf, &proof).expect("inprocessed refutation must check");
    }

    #[test]
    fn vivify_cascade_facts_reach_the_proof_before_their_derivers_die() {
        // Vivifying (a b c) against the binaries (a x)(a ¬x) shrinks it to
        // the unit [a], whose propagation derives d through the long
        // clause (¬a ¬u d). A later probe in the same pass then deletes
        // that deriver as satisfied-at-top, and the probe after it shrinks
        // (¬d e f) to [e] — an addition that is RUP only if the fact d
        // entered the proof while its deriver was still alive. The
        // pigeonhole test cannot catch this: its clauses are all binary,
        // so vivification never shrinks anything there.
        let mut cnf = CnfFormula::new();
        let v = cnf.new_lits(8);
        let (u, a, x, b, c, d, e, f) = (v[0], v[1], v[2], v[3], v[4], v[5], v[6], v[7]);
        cnf.add_clause([u]);
        cnf.add_clause([a, x]);
        cnf.add_clause([a, !x]);
        cnf.add_clause([a, b, c]); // vivifies to the unit [a]
        cnf.add_clause([!a, !u, d]); // derives d when a lands, then dies
        cnf.add_clause([!d, e, f]);
        cnf.add_clause([!d, e, !f]);
        cnf.add_clause([!d, !e, f]);
        cnf.add_clause([!d, !e, !f]);
        let mut solver = Solver::new(cnf.clone()).with_proof_writer(Box::<DratProof>::default());
        solver.inprocess_now();
        assert!(solver.stats().vivified_clauses >= 1, "{}", solver.stats());
        let (result, _, proof) = solver.solve_certified(Budget::new());
        assert!(result.is_unsat());
        let proof = proof.expect("log present");
        assert!(proof.is_concluded());
        drat::check(&cnf, &proof).expect("cascade-derived units must be in the proof");
    }

    #[test]
    fn pass_is_deterministic() {
        let mk = || {
            let mut cnf = CnfFormula::new();
            let v = cnf.new_lits(6);
            for w in v.windows(3) {
                cnf.add_clause([w[0], w[1], w[2]]);
                cnf.add_clause([!w[0], w[1], !w[2]]);
            }
            cnf.add_clause([v[0], !v[5]]);
            let mut s = Solver::new(cnf);
            s.inprocess_now();
            let (verdict, stats) = s.solve_with_budget(Budget::new());
            (verdict.is_sat(), stats)
        };
        let (r1, s1) = mk();
        let (r2, s2) = mk();
        assert_eq!(r1, r2);
        assert_eq!(s1.eliminated_vars, s2.eliminated_vars);
        assert_eq!(s1.subsumed_clauses, s2.subsumed_clauses);
        assert_eq!(s1.strengthened_clauses, s2.strengthened_clauses);
        assert_eq!(s1.vivified_clauses, s2.vivified_clauses);
        assert_eq!(s1.conflicts, s2.conflicts);
    }
}
