//! DIMACS CNF import and export.
//!
//! Useful for cross-checking the built-in solver against an external one,
//! and for archiving the synthesis formulas `Φ(f, N_V, N_R)` alongside
//! experiment results.
//!
//! # Example
//!
//! ```
//! use mm_sat::{dimacs, CnfFormula};
//!
//! # fn main() -> Result<(), mm_sat::SatError> {
//! let cnf = dimacs::parse("p cnf 2 2\n1 2 0\n-1 2 0\n")?;
//! assert_eq!(cnf.n_vars(), 2);
//! assert_eq!(cnf.n_clauses(), 2);
//! let text = dimacs::to_string(&cnf);
//! assert!(text.starts_with("p cnf 2 2"));
//! # Ok(())
//! # }
//! ```

use std::fmt::Write as _;

use crate::{CnfFormula, Lit, SatError};

/// Parses DIMACS CNF text into a [`CnfFormula`].
///
/// Comment lines (`c …`) and the problem line (`p cnf V C`) are accepted;
/// the declared counts are advisory and only used to pre-reserve variables.
/// Clauses may span lines and must be 0-terminated.
///
/// # Errors
///
/// Returns [`SatError::ParseDimacs`] on malformed tokens, an empty clause,
/// or a missing final terminator.
pub fn parse(text: &str) -> Result<CnfFormula, SatError> {
    let mut cnf = CnfFormula::new();
    let mut current: Vec<Lit> = Vec::new();
    let mut saw_terminator = true;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let mut parts = rest.split_whitespace();
            if parts.next() != Some("cnf") {
                return Err(SatError::ParseDimacs {
                    line: lineno + 1,
                    reason: "problem line must be `p cnf <vars> <clauses>`".into(),
                });
            }
            if let Some(v) = parts.next().and_then(|t| t.parse::<u32>().ok()) {
                cnf.reserve_vars(v);
            }
            continue;
        }
        for token in line.split_whitespace() {
            let value: i64 = token.parse().map_err(|_| SatError::ParseDimacs {
                line: lineno + 1,
                reason: format!("invalid literal token {token:?}"),
            })?;
            if value == 0 {
                if current.is_empty() {
                    return Err(SatError::ParseDimacs {
                        line: lineno + 1,
                        reason: "empty clause".into(),
                    });
                }
                cnf.add_clause(current.drain(..));
                saw_terminator = true;
            } else {
                let lit = Lit::from_dimacs(value).ok_or_else(|| SatError::ParseDimacs {
                    line: lineno + 1,
                    reason: format!("literal {value} out of range"),
                })?;
                current.push(lit);
                saw_terminator = false;
            }
        }
    }
    if !saw_terminator {
        return Err(SatError::ParseDimacs {
            line: text.lines().count(),
            reason: "last clause is not 0-terminated".into(),
        });
    }
    Ok(cnf)
}

/// Serializes a [`CnfFormula`] to DIMACS CNF text.
pub fn to_string(cnf: &CnfFormula) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", cnf.n_vars(), cnf.n_clauses());
    for clause in cnf.clauses() {
        for &l in clause {
            let _ = write!(out, "{} ", l.to_dimacs());
        }
        let _ = writeln!(out, "0");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SatResult, Solver};

    #[test]
    fn round_trip() {
        let text = "c a comment\np cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0\n";
        let cnf = parse(text).unwrap();
        assert_eq!(cnf.n_vars(), 3);
        assert_eq!(cnf.n_clauses(), 3);
        let again = parse(&to_string(&cnf)).unwrap();
        assert_eq!(again.n_clauses(), cnf.n_clauses());
        assert!(Solver::new(cnf).solve().is_sat());
    }

    #[test]
    fn multi_line_clause() {
        let cnf = parse("p cnf 2 1\n1\n2 0\n").unwrap();
        assert_eq!(cnf.n_clauses(), 1);
        assert_eq!(cnf.clauses()[0].len(), 2);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("p cnf 1 1\nxyz 0\n").is_err());
        assert!(parse("p cnf 1 1\n0\n").is_err());
        assert!(parse("p cnf 1 1\n1 2\n").is_err());
        assert!(parse("p dnf 1 1\n1 0\n").is_err());
    }

    #[test]
    fn unsat_instance_round_trips() {
        let text = "p cnf 1 2\n1 0\n-1 0\n";
        let cnf = parse(text).unwrap();
        assert_eq!(Solver::new(cnf).solve(), SatResult::Unsat);
    }
}
