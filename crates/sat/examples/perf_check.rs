//! Quick throughput sanity check: hard random 3-SAT near the phase transition.
use mm_sat::{Budget, CnfFormula, Lit, Solver};
use std::time::Instant;

#[allow(clippy::needless_range_loop)]
fn main() {
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for &(n, ratio) in &[(150usize, 4.2f64), (200, 4.2)] {
        let m = (n as f64 * ratio) as usize;
        let mut cnf = CnfFormula::new();
        let vars: Vec<Lit> = (0..n).map(|_| cnf.new_lit()).collect();
        for _ in 0..m {
            let mut picked = Vec::new();
            while picked.len() < 3 {
                let v = (rng() % n as u64) as usize;
                if !picked.iter().any(|&(p, _)| p == v) {
                    picked.push((v, rng() % 2 == 0));
                }
            }
            cnf.add_clause(
                picked
                    .iter()
                    .map(|&(v, s)| if s { vars[v] } else { !vars[v] }),
            );
        }
        let t = Instant::now();
        let (res, stats) =
            Solver::new(cnf).solve_with_budget(Budget::new().with_max_conflicts(2_000_000));
        println!(
            "n={n} m={m}: {:?} in {:.2?} ({})",
            std::mem::discriminant(&res),
            t.elapsed(),
            stats
        );
    }
    // Pigeonhole 10 into 9: a classic hard UNSAT case for CDCL.
    let mut cnf = CnfFormula::new();
    let holes = 9;
    let pigeons = 10;
    let vars: Vec<Vec<Lit>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| cnf.new_lit()).collect())
        .collect();
    for p in &vars {
        cnf.add_clause(p.iter().copied());
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                cnf.add_clause([!vars[p1][h], !vars[p2][h]]);
            }
        }
    }
    let t = Instant::now();
    let (res, stats) =
        Solver::new(cnf).solve_with_budget(Budget::new().with_max_conflicts(5_000_000));
    println!(
        "php(10,9): {:?} in {:.2?} ({})",
        std::mem::discriminant(&res),
        t.elapsed(),
        stats
    );
}
