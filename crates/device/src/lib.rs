//! Memristive device models, variability, and the 1D line-array executor.
//!
//! The paper validates its synthesized circuits on a physical line array of
//! ten BiFeO₃ (BFO) memristors driven by a Keithley 2400 source meter
//! (§V, Fig. 2). This crate is the simulated stand-in: it exercises exactly
//! the same schedule → voltage-waveform → state-evolution path and produces
//! the same observables (per-cell resistance per cycle, TE/BE voltages,
//! |I| readouts).
//!
//! * [`DeviceState`] — the two resistive states (LRS ≙ logic 1,
//!   HRS ≙ logic 0).
//! * [`vop`] — the voltage-input operation of the paper's Table I.
//! * [`ROpKind`] — the stateful operation families (MAGIC NOR for
//!   BFO-class devices, NIMP for Ta₂O₅-class devices).
//! * [`Memristor`], [`IdealMemristor`], [`BfoMemristor`] — device models;
//!   the BFO model is an electrical threshold-switching model with
//!   device-to-device (D2D) and cycle-to-cycle (C2C) variation.
//! * [`LineArray`] — a 1D array with shared bottom electrode: parallel
//!   V-op cycles, voltage-divider MAGIC R-ops, read cycles, and a full
//!   [`MeasurementTrace`] of everything it did.
//! * [`monte_carlo`] — reliability experiments quantifying the paper's
//!   motivating claim that R-ops (especially cascaded ones) are less
//!   reliable than V-ops under variation.
//! * [`FaultPlan`] — declarative fault scenarios (stuck-at cells, transient
//!   upsets, variability overrides) that deterministically build faulty
//!   arrays for the fault-injection campaigns in `mm-circuit`.
//!
//! # Example
//!
//! ```
//! use mm_device::{DeviceState, LineArray};
//!
//! let mut array = LineArray::ideal(3);
//! // One V-op cycle: write 1 into cell 0 (TE pulse, BE grounded).
//! array.v_op_cycle(&[Some(true), None, None], false);
//! assert_eq!(array.state(0), DeviceState::Lrs);
//! // A MAGIC NOR with cells 0 and 1 as inputs, cell 2 as output.
//! array.force_state(2, DeviceState::Lrs); // output init to 1
//! array.magic_nor(&[0, 1], 2);
//! assert_eq!(array.state(2), DeviceState::Hrs); // NOR(1, 0) = 0
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crossbar;
mod electrical;
mod faults;
mod line_array;
mod rop;
mod state;
mod trace;
mod variability;

pub mod arbitrary;
pub mod monte_carlo;
pub mod seeds;
pub mod vop;

pub use crossbar::Crossbar;
pub use electrical::{BfoMemristor, ElectricalParams, IdealMemristor, Memristor, StuckMemristor};
pub use faults::{FaultPlan, StuckFault, TransientFault};
pub use line_array::LineArray;
pub use rop::ROpKind;
pub use state::DeviceState;
pub use trace::{CycleKind, CycleRecord, MeasurementTrace};
pub use variability::Variability;
