use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::{
    BfoMemristor, CycleKind, CycleRecord, DeviceState, ElectricalParams, IdealMemristor,
    MeasurementTrace, Memristor,
};

/// A 1D line array of memristors with a shared bottom electrode.
///
/// This is the paper's hardware platform (§I, §V): a row of discrete
/// devices whose TEs are individually driven and whose BEs are tied
/// together during V-op cycles. R-ops temporarily rewire the involved
/// cells into a MAGIC voltage divider, exactly as the paper's PCB switch
/// unit does.
///
/// Every operation is appended to a [`MeasurementTrace`], so executing a
/// synthesized schedule yields the same kind of record as the paper's
/// Fig. 2 measurement.
///
/// # Example
///
/// ```
/// use mm_device::{DeviceState, LineArray};
///
/// let mut array = LineArray::ideal(2);
/// array.v_op_cycle(&[Some(true), Some(false)], false);
/// assert_eq!(array.state(0), DeviceState::Lrs);
/// assert_eq!(array.state(1), DeviceState::Hrs);
/// assert_eq!(array.trace().len(), 1);
/// ```
pub struct LineArray {
    cells: Vec<Box<dyn Memristor>>,
    params: ElectricalParams,
    rng: SmallRng,
    trace: MeasurementTrace,
}

impl std::fmt::Debug for LineArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LineArray")
            .field("n_cells", &self.cells.len())
            .field("states", &self.states())
            .field("recorded_cycles", &self.trace.len())
            .finish()
    }
}

impl LineArray {
    /// An array of `n` ideal devices (exact thresholds, no variation), all
    /// initialized to HRS.
    pub fn ideal(n: usize) -> Self {
        Self {
            cells: (0..n)
                .map(|_| Box::new(IdealMemristor::new()) as Box<dyn Memristor>)
                .collect(),
            params: ElectricalParams::bfo(),
            rng: SmallRng::seed_from_u64(0),
            trace: MeasurementTrace::new(),
        }
    }

    /// An ideal array with defective (stuck) devices at the given
    /// positions — the yield scenario of the paper's introduction.
    ///
    /// # Panics
    ///
    /// Panics if a fault index is out of range.
    pub fn ideal_with_faults(n: usize, faults: &[(usize, DeviceState)]) -> Self {
        let mut array = Self::ideal(n);
        for &(i, stuck) in faults {
            assert!(i < n, "fault index {i} out of range");
            array.cells[i] = Box::new(crate::StuckMemristor::new(stuck));
        }
        array
    }

    /// An array of `n` BFO devices fabricated with the given parameters.
    ///
    /// `seed` drives both fabrication (D2D) and operation (C2C) randomness;
    /// equal seeds reproduce identical experiments.
    pub fn bfo(n: usize, params: ElectricalParams, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let cells = (0..n)
            .map(|_| Box::new(BfoMemristor::fabricate(params, &mut rng)) as Box<dyn Memristor>)
            .collect();
        Self {
            cells,
            params,
            rng,
            trace: MeasurementTrace::new(),
        }
    }

    /// Re-fabricates the array in place under a new seed: every device
    /// re-draws its D2D randomness from a fresh RNG, all states return to
    /// HRS and the trace is cleared.
    ///
    /// After `array.reseed(s)` the array is draw-for-draw equivalent to
    /// `LineArray::bfo(n, params, s)` (stuck cells excepted — they stay
    /// stuck but consume the same number of draws), which lets Monte-Carlo
    /// loops and fault campaigns reuse one allocation across thousands of
    /// seeded trials instead of re-boxing every device model.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = SmallRng::seed_from_u64(seed);
        let params = self.params;
        for cell in &mut self.cells {
            cell.refabricate(&params, &mut self.rng);
        }
        self.trace = MeasurementTrace::new();
    }

    /// Replaces cell `i` with a device stuck at `state`, keeping the
    /// array's electrical parameters. Models an in-operation device failure
    /// (the paper's yield scenario) at a chosen position.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_stuck(&mut self, i: usize, state: DeviceState) {
        assert!(i < self.cells.len(), "stuck index {i} out of range");
        self.cells[i] = Box::new(crate::StuckMemristor::with_params(state, self.params));
    }

    /// Flips cell `i`'s logic state in place — a transient upset injected
    /// by the fault-campaign engine. Stuck cells ignore the flip.
    ///
    /// Unlike [`force_state`](Self::force_state) nothing is recorded: an
    /// upset is not a driven cycle, and keeping the trace aligned with the
    /// schedule's cycle count is what lets campaign diagnosis attribute
    /// divergence to exact cycles.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn flip_state(&mut self, i: usize) {
        let flipped = !self.cells[i].state();
        self.cells[i].force_state(flipped);
    }

    /// Number of cells in the array.
    pub fn n_cells(&self) -> usize {
        self.cells.len()
    }

    /// The state of cell `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn state(&self, i: usize) -> DeviceState {
        self.cells[i].state()
    }

    /// All cell states as logic values.
    pub fn states(&self) -> Vec<bool> {
        self.cells.iter().map(|c| c.state().to_bool()).collect()
    }

    /// Forces cell `i` into `state` and records an init cycle.
    ///
    /// Models the pre-setting of MAGIC output cells (the paper initializes
    /// cells 7–10 to state 1 before executing the R-ops).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn force_state(&mut self, i: usize, state: DeviceState) {
        self.cells[i].force_state(state);
        self.record(
            CycleKind::Init,
            vec![None; self.cells.len()],
            None,
            vec![None; self.cells.len()],
        );
    }

    /// Initializes all cells (without recording individual cycles) and
    /// clears the trace: the experiment's time zero.
    pub fn reset(&mut self, states: &[bool]) {
        assert_eq!(
            states.len(),
            self.cells.len(),
            "state vector must cover every cell"
        );
        for (cell, &s) in self.cells.iter_mut().zip(states) {
            cell.force_state(DeviceState::from_bool(s));
        }
        self.trace = MeasurementTrace::new();
    }

    /// Executes one parallel V-op cycle.
    ///
    /// `te[i]` is the logic level driven on cell `i`'s TE; `None` floats the
    /// cell, which the peripherals realize as a dummy cycle (TE tied to the
    /// shared BE, so the cell holds its state). `be` is the shared
    /// bottom-electrode level.
    ///
    /// # Panics
    ///
    /// Panics if `te.len()` differs from the cell count.
    pub fn v_op_cycle(&mut self, te: &[Option<bool>], be: bool) {
        assert_eq!(te.len(), self.cells.len(), "one TE level per cell required");
        let vw = self.params.v_write;
        let v_be = if be { vw } else { 0.0 };
        let mut te_voltages = Vec::with_capacity(te.len());
        let mut currents = Vec::with_capacity(te.len());
        for (i, lvl) in te.iter().enumerate() {
            let v_te = match lvl {
                Some(l) => {
                    if *l {
                        vw
                    } else {
                        0.0
                    }
                }
                None => v_be, // dummy cycle: TE follows BE
            };
            let dv = v_te - v_be;
            self.cells[i].apply_voltage(dv, &mut self.rng);
            te_voltages.push(Some(v_te));
            currents.push(if dv == 0.0 {
                None
            } else {
                Some(dv / self.cells[i].resistance())
            });
        }
        self.record(CycleKind::VOp { be }, te_voltages, Some(v_be), currents);
    }

    /// Executes one MAGIC NOR R-op: `out ← ¬(in₁ ∨ in₂ ∨ …)`.
    ///
    /// The involved cells form a voltage divider: the supply `V0` drives the
    /// input cells in parallel; their common far node feeds the output cell,
    /// which is connected in the RESET orientation. The output must have
    /// been initialized to LRS beforehand. Voltages are computed from the
    /// pre-cycle resistances and applied to *all* involved devices, so input
    /// disturb under variation is faithfully modeled.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty, an index is out of range or repeated,
    /// or `out` is also an input.
    pub fn magic_nor(&mut self, inputs: &[usize], out: usize) {
        assert!(!inputs.is_empty(), "MAGIC NOR needs at least one input");
        let mut involved: Vec<usize> = inputs.to_vec();
        involved.push(out);
        involved.sort_unstable();
        let before = involved.len();
        involved.dedup();
        assert_eq!(before, involved.len(), "MAGIC NOR cells must be distinct");
        assert!(
            *involved.last().expect("non-empty") < self.cells.len(),
            "cell out of range"
        );

        let v0 = self.params.v0_magic;
        let g_par: f64 = inputs
            .iter()
            .map(|&i| 1.0 / self.cells[i].resistance())
            .sum();
        let r_par = 1.0 / g_par;
        let r_out = self.cells[out].resistance();
        let v_node = v0 * r_out / (r_par + r_out);

        // Output sits in the RESET orientation; inputs see the SET polarity.
        let mut currents = vec![None; self.cells.len()];
        for &i in inputs {
            currents[i] = Some((v0 - v_node) / self.cells[i].resistance());
        }
        currents[out] = Some(v_node / r_out);
        self.cells[out].apply_voltage(-v_node, &mut self.rng);
        for &i in inputs {
            self.cells[i].apply_voltage(v0 - v_node, &mut self.rng);
        }

        let mut te_voltages = vec![None; self.cells.len()];
        for &i in inputs {
            te_voltages[i] = Some(v0);
        }
        te_voltages[out] = Some(v_node);
        self.record(
            CycleKind::ROp {
                inputs: inputs.to_vec(),
                output: out,
            },
            te_voltages,
            None,
            currents,
        );
    }

    /// Reads cell `i` with a small non-destructive pulse; returns the logic
    /// value inferred from the read current.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn read(&mut self, i: usize) -> DeviceState {
        let current = self.params.v_read / self.cells[i].resistance();
        let value = current > self.params.read_current_threshold();
        let mut te_voltages = vec![None; self.cells.len()];
        te_voltages[i] = Some(self.params.v_read);
        let mut currents = vec![None; self.cells.len()];
        currents[i] = Some(current);
        self.record(
            CycleKind::Read { cell: i, value },
            te_voltages,
            Some(0.0),
            currents,
        );
        DeviceState::from_bool(value)
    }

    /// The measurement record accumulated so far.
    pub fn trace(&self) -> &MeasurementTrace {
        &self.trace
    }

    /// The electrical parameters the array was built with.
    pub fn params(&self) -> &ElectricalParams {
        &self.params
    }

    fn record(
        &mut self,
        kind: CycleKind,
        te_voltages: Vec<Option<f64>>,
        be_voltage: Option<f64>,
        currents: Vec<Option<f64>>,
    ) {
        self.trace.push(CycleRecord {
            kind,
            te_voltages,
            be_voltage,
            currents,
            resistances: self.cells.iter().map(|c| c.resistance()).collect(),
            states: self.cells.iter().map(|c| c.state()).collect(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{vop, Variability};

    #[test]
    fn v_op_cycle_matches_table1_semantics() {
        for s0 in [false, true] {
            for te in [false, true] {
                for be in [false, true] {
                    let mut a = LineArray::ideal(1);
                    a.reset(&[s0]);
                    a.v_op_cycle(&[Some(te)], be);
                    let expected = vop::apply(DeviceState::from_bool(s0), te, be);
                    assert_eq!(a.state(0), expected, "s0={s0} te={te} be={be}");
                }
            }
        }
    }

    #[test]
    fn floating_te_is_a_dummy_cycle() {
        let mut a = LineArray::ideal(2);
        a.reset(&[true, false]);
        a.v_op_cycle(&[None, None], true);
        assert_eq!(a.state(0), DeviceState::Lrs);
        assert_eq!(a.state(1), DeviceState::Hrs);
    }

    #[test]
    fn magic_nor_all_input_combinations() {
        for a_in in [false, true] {
            for b_in in [false, true] {
                let mut arr = LineArray::ideal(3);
                arr.reset(&[a_in, b_in, true]); // output pre-set to 1
                arr.magic_nor(&[0, 1], 2);
                assert_eq!(arr.state(2).to_bool(), !(a_in | b_in), "NOR({a_in},{b_in})");
                // Inputs must survive the operation.
                assert_eq!(arr.state(0).to_bool(), a_in);
                assert_eq!(arr.state(1).to_bool(), b_in);
            }
        }
    }

    #[test]
    fn magic_nor_three_inputs() {
        let mut arr = LineArray::ideal(4);
        arr.reset(&[false, false, false, true]);
        arr.magic_nor(&[0, 1, 2], 3);
        assert_eq!(arr.state(3), DeviceState::Lrs);
        arr.reset(&[false, true, false, true]);
        arr.magic_nor(&[0, 1, 2], 3);
        assert_eq!(arr.state(3), DeviceState::Hrs);
    }

    #[test]
    fn read_is_non_destructive_and_correct() {
        let mut a = LineArray::ideal(2);
        a.reset(&[true, false]);
        assert_eq!(a.read(0), DeviceState::Lrs);
        assert_eq!(a.read(1), DeviceState::Hrs);
        assert_eq!(a.state(0), DeviceState::Lrs);
        assert_eq!(a.state(1), DeviceState::Hrs);
        assert_eq!(a.trace().len(), 2);
    }

    #[test]
    fn bfo_array_without_variation_behaves_ideally() {
        let mut a = LineArray::bfo(3, ElectricalParams::bfo(), 99);
        a.reset(&[true, false, true]);
        a.magic_nor(&[0, 1], 2);
        assert_eq!(a.state(2), DeviceState::Hrs);
        a.reset(&[false, false, true]);
        a.magic_nor(&[0, 1], 2);
        assert_eq!(a.state(2), DeviceState::Lrs);
    }

    #[test]
    fn trace_records_currents_and_unobservable_cycles() {
        let mut a = LineArray::ideal(2);
        a.reset(&[false, false]);
        a.v_op_cycle(&[Some(true), Some(false)], false);
        let rec = &a.trace().cycles()[0];
        assert!(
            rec.currents[0].is_some(),
            "driven cell has measurable current"
        );
        assert!(
            rec.currents[1].is_none(),
            "TE == BE is unobservable per the paper"
        );
        assert_eq!(rec.be_voltage, Some(0.0));
        assert_eq!(rec.states[0], DeviceState::Lrs);
    }

    #[test]
    fn high_variation_eventually_breaks_r_ops_but_not_ideal() {
        // Statistical smoke test: with a harsh corner, at least one of many
        // NOR executions misfires, while the ideal array never does.
        let params = ElectricalParams::bfo().with_variability(Variability {
            d2d_sigma: 0.6,
            c2c_sigma: 0.2,
        });
        let mut failures = 0;
        for seed in 0..200 {
            let mut a = LineArray::bfo(3, params, seed);
            a.reset(&[true, false, true]);
            a.magic_nor(&[0, 1], 2);
            if a.state(2) != DeviceState::Hrs {
                failures += 1;
            }
        }
        assert!(failures > 0, "harsh variation should break some R-ops");
    }

    #[test]
    fn stuck_input_cell_biases_nor_to_its_stuck_value() {
        // A stuck-LRS input dominates the divider: the NOR output is 0 no
        // matter what the schedule intended to store in that cell.
        for intended in [false, true] {
            let mut a = LineArray::ideal_with_faults(3, &[(0, DeviceState::Lrs)]);
            a.reset(&[intended, false, true]);
            a.magic_nor(&[0, 1], 2);
            assert_eq!(a.state(2), DeviceState::Hrs, "intended {intended}");
        }
        // A stuck-HRS input degenerates the NOR to NOT(other input): the
        // schedule still computes correctly whenever the intended value for
        // the stuck cell was 0 anyway.
        for other in [false, true] {
            let mut a = LineArray::ideal_with_faults(3, &[(0, DeviceState::Hrs)]);
            a.reset(&[true, other, true]);
            a.magic_nor(&[0, 1], 2);
            assert_eq!(a.state(2).to_bool(), !other, "other {other}");
        }
    }

    #[test]
    fn stuck_output_cell_always_reads_its_stuck_state() {
        // The output cannot be pre-set to LRS nor RESET by the divider: the
        // result is the stuck state, which is only accidentally correct when
        // it coincides with the true NOR value (e.g. stuck-HRS with an LRS
        // input). Repair must therefore avoid the cell rather than trust
        // any single passing input pattern.
        for (sa, sb) in [(false, false), (true, false), (true, true)] {
            for stuck in [DeviceState::Hrs, DeviceState::Lrs] {
                let mut a = LineArray::ideal_with_faults(3, &[(2, stuck)]);
                a.reset(&[sa, sb, true]);
                a.magic_nor(&[0, 1], 2);
                assert_eq!(a.state(2), stuck, "inputs ({sa},{sb}) stuck {stuck}");
                // Inputs themselves must survive the faulty divider.
                assert_eq!(a.state(0).to_bool(), sa);
                assert_eq!(a.state(1).to_bool(), sb);
            }
        }
    }

    #[test]
    fn stuck_cascade_intermediate_only_breaks_dependent_stages() {
        // Two-stage chain: NOR(c0, c1) → c3, then NOR(c3, c2) → c4, with the
        // intermediate c3 stuck at LRS. Stage 2 always sees a 1 and yields 0;
        // input patterns whose intended chain value is 0 still pass — the
        // campaign's attribution has to catch the cell from the patterns
        // that don't.
        for (a_in, b_in, c_in, breaks) in [
            (true, false, false, true),   // intended NOR(NOR(1,0),0) = 1 ≠ 0
            (true, true, false, true),    // intended 1 ≠ 0
            (false, false, false, false), // intended 0: accidentally correct
            (true, true, true, false),    // intended 0: accidentally correct
        ] {
            let mut arr = LineArray::ideal_with_faults(5, &[(3, DeviceState::Lrs)]);
            arr.reset(&[a_in, b_in, c_in, true, true]);
            arr.magic_nor(&[0, 1], 3);
            arr.magic_nor(&[3, 2], 4);
            assert_eq!(
                arr.state(4),
                DeviceState::Hrs,
                "stuck-LRS intermediate forces stage 2 to 0"
            );
            let intended = !(!(a_in | b_in) | c_in);
            assert_eq!(
                intended,
                breaks,
                "pattern ({a_in},{b_in},{c_in}) expected to {}",
                if breaks { "break" } else { "pass" }
            );
        }
    }

    #[test]
    fn reseed_replays_fresh_construction_exactly() {
        let params = ElectricalParams::bfo().with_variability(Variability::HIGH);
        let mut reused = LineArray::bfo(3, params, 1);
        // Consume some C2C stream so reseed must genuinely restart the RNG.
        reused.reset(&[true, false, true]);
        reused.magic_nor(&[0, 1], 2);

        for seed in [7u64, 8, 9] {
            let mut fresh = LineArray::bfo(3, params, seed);
            reused.reseed(seed);
            assert_eq!(reused.states(), fresh.states(), "post-reseed states");
            for init in [[true, false, true], [false, false, true]] {
                fresh.reset(&init);
                reused.reset(&init);
                fresh.magic_nor(&[0, 1], 2);
                reused.magic_nor(&[0, 1], 2);
                assert_eq!(reused.states(), fresh.states(), "seed {seed}");
                let fr = &fresh.trace().cycles()[0];
                let rr = &reused.trace().cycles()[0];
                assert_eq!(fr.resistances, rr.resistances, "D2D draws must match");
            }
        }
    }

    #[test]
    fn reseed_keeps_stuck_cells_and_draw_alignment() {
        let params = ElectricalParams::bfo().with_variability(Variability::HIGH);
        let mut faulty = LineArray::bfo(3, params, 1);
        faulty.set_stuck(1, DeviceState::Lrs);
        faulty.reseed(42);
        assert_eq!(faulty.state(1), DeviceState::Lrs, "stuck survives reseed");

        // Cells other than the stuck one must match a healthy array at the
        // same seed — the stuck cell consumed its position's draws. A read
        // cycle records every cell's resistance without touching the RNG.
        let mut healthy = LineArray::bfo(3, params, 42);
        healthy.read(0);
        faulty.read(0);
        let hr = &healthy.trace().cycles()[0].resistances;
        let fr = &faulty.trace().cycles()[0].resistances;
        assert_eq!(hr[0], fr[0], "cell 0 fabrication must match");
        assert_eq!(hr[2], fr[2], "cell 2 fabrication must match");
        assert_ne!(hr[1], fr[1], "stuck cell reads its nominal resistance");
    }

    #[test]
    fn flip_state_toggles_without_recording() {
        let mut a = LineArray::ideal(2);
        a.reset(&[true, false]);
        a.flip_state(0);
        a.flip_state(1);
        assert_eq!(a.state(0), DeviceState::Hrs);
        assert_eq!(a.state(1), DeviceState::Lrs);
        assert_eq!(a.trace().len(), 0, "upsets must not appear in the trace");

        let mut s = LineArray::ideal_with_faults(1, &[(0, DeviceState::Hrs)]);
        s.flip_state(0);
        assert_eq!(s.state(0), DeviceState::Hrs, "stuck cells ignore flips");
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn magic_nor_rejects_overlapping_cells() {
        let mut a = LineArray::ideal(3);
        a.magic_nor(&[0, 1], 1);
    }
}
