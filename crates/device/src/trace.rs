use std::fmt;

use serde::{Deserialize, Serialize};

use crate::DeviceState;

/// What a recorded cycle did — the row labels of the paper's Fig. 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CycleKind {
    /// State initialization (pre-setting output cells, clearing the array).
    Init,
    /// A parallel V-op write cycle with the shared-BE logic level.
    VOp {
        /// Logic level applied to the shared bottom electrode.
        be: bool,
    },
    /// A MAGIC R-op cycle.
    ROp {
        /// Input cell indices.
        inputs: Vec<usize>,
        /// Output cell index.
        output: usize,
    },
    /// A read cycle of one cell.
    Read {
        /// The cell that was read.
        cell: usize,
        /// The logic value that was read out.
        value: bool,
    },
}

impl fmt::Display for CycleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Init => write!(f, "init"),
            Self::VOp { be } => write!(f, "V-op (BE={})", u8::from(*be)),
            Self::ROp { inputs, output } => {
                write!(f, "R-op (in={inputs:?}, out={output})")
            }
            Self::Read { cell, value } => write!(f, "read cell {cell} -> {}", u8::from(*value)),
        }
    }
}

/// One cycle of the measurement record: the quantities the paper's Fig. 2
/// plots for every cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CycleRecord {
    /// What the cycle did.
    pub kind: CycleKind,
    /// Voltage applied to each cell's top electrode (`None` = not driven).
    pub te_voltages: Vec<Option<f64>>,
    /// Voltage on the shared bottom electrode (`None` during R-op cycles,
    /// where the involved cells are rewired into the voltage divider).
    pub be_voltage: Option<f64>,
    /// Magnitude of the current through each cell (`None` when TE and BE
    /// are biased equally — the paper notes such measurements are not
    /// observable).
    pub currents: Vec<Option<f64>>,
    /// Each cell's resistance after the cycle, in Ω.
    pub resistances: Vec<f64>,
    /// Each cell's state after the cycle.
    pub states: Vec<DeviceState>,
}

/// The full record of everything a [`LineArray`](crate::LineArray) executed.
///
/// Equivalent to the source-meter log behind the paper's Fig. 2.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MeasurementTrace {
    cycles: Vec<CycleRecord>,
}

impl MeasurementTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn push(&mut self, record: CycleRecord) {
        self.cycles.push(record);
    }

    /// The recorded cycles, oldest first.
    pub fn cycles(&self) -> &[CycleRecord] {
        &self.cycles
    }

    /// Number of recorded cycles.
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// Bridges the recorded cycles into a telemetry stream: one
    /// `device.cycle` point per cycle (carrying the [`CycleKind`]
    /// breakdown) plus a `device.cycles` counter with the total. A
    /// disabled handle makes this a no-op before any allocation.
    pub fn emit_telemetry(&self, telemetry: &mm_telemetry::Telemetry) {
        use mm_telemetry::kv;
        if !telemetry.is_enabled() || self.cycles.is_empty() {
            return;
        }
        for (idx, c) in self.cycles.iter().enumerate() {
            let mut attrs = vec![kv("cycle", idx)];
            match &c.kind {
                CycleKind::Init => attrs.push(kv("kind", "init")),
                CycleKind::VOp { be } => {
                    attrs.push(kv("kind", "vop"));
                    attrs.push(kv("be", *be));
                }
                CycleKind::ROp { inputs, output } => {
                    attrs.push(kv("kind", "rop"));
                    attrs.push(kv("n_inputs", inputs.len()));
                    attrs.push(kv("output", *output));
                }
                CycleKind::Read { cell, value } => {
                    attrs.push(kv("kind", "read"));
                    attrs.push(kv("cell", *cell));
                    attrs.push(kv("value", *value));
                }
            }
            telemetry.point("device.cycle", attrs);
        }
        telemetry.counter("device.cycles", self.cycles.len() as u64);
    }

    /// Renders the trace as a fixed-width table (cells as columns, one block
    /// of rows per cycle), mirroring the layout of the paper's Fig. 2.
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let n = self.cycles.first().map_or(0, |c| c.states.len());
        let _ = write!(out, "{:<26}", "cycle");
        for i in 0..n {
            let _ = write!(out, "cell{i:<7}");
        }
        out.push('\n');
        for (idx, c) in self.cycles.iter().enumerate() {
            let _ = writeln!(out, "-- cycle {idx}: {}", c.kind);
            let _ = write!(out, "{:<26}", "  TE [V]");
            for v in &c.te_voltages {
                match v {
                    Some(v) => {
                        let _ = write!(out, "{v:<11.2}");
                    }
                    None => {
                        let _ = write!(out, "{:<11}", "-");
                    }
                }
            }
            out.push('\n');
            let _ = write!(
                out,
                "{:<26}",
                match c.be_voltage {
                    Some(v) => format!("  BE [V] = {v:.2}"),
                    None => "  BE: divider".to_string(),
                }
            );
            out.push('\n');
            let _ = write!(out, "{:<26}", "  |I| [uA]");
            for i in &c.currents {
                match i {
                    Some(i) => {
                        let _ = write!(out, "{:<11.3}", i.abs() * 1e6);
                    }
                    None => {
                        let _ = write!(out, "{:<11}", "n/a");
                    }
                }
            }
            out.push('\n');
            let _ = write!(out, "{:<26}", "  R [MOhm]");
            for r in &c.resistances {
                let _ = write!(out, "{:<11.2}", r / 1e6);
            }
            out.push('\n');
            let _ = write!(out, "{:<26}", "  state");
            for s in &c.states {
                let _ = write!(out, "{:<11}", s.to_string());
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_smoke() {
        let mut trace = MeasurementTrace::new();
        trace.push(CycleRecord {
            kind: CycleKind::VOp { be: false },
            te_voltages: vec![Some(7.0), None],
            be_voltage: Some(0.0),
            currents: vec![Some(7.0e-6), None],
            resistances: vec![1.0e6, 1.0e8],
            states: vec![DeviceState::Lrs, DeviceState::Hrs],
        });
        assert_eq!(trace.len(), 1);
        assert!(!trace.is_empty());
        let table = trace.to_table();
        assert!(table.contains("V-op (BE=0)"));
        assert!(table.contains("LRS"));
        assert!(table.contains("n/a"));
    }

    #[test]
    fn emit_telemetry_bridges_every_cycle() {
        use mm_telemetry::{attr, EventKind, MemorySink, RunReport, Telemetry};
        use std::sync::Arc;

        let mut trace = MeasurementTrace::new();
        trace.push(CycleRecord {
            kind: CycleKind::Init,
            te_voltages: vec![None],
            be_voltage: Some(0.0),
            currents: vec![None],
            resistances: vec![1.0e6],
            states: vec![DeviceState::Lrs],
        });
        trace.push(CycleRecord {
            kind: CycleKind::Read {
                cell: 0,
                value: true,
            },
            te_voltages: vec![Some(1.0)],
            be_voltage: Some(0.0),
            currents: vec![Some(1.0e-6)],
            resistances: vec![1.0e6],
            states: vec![DeviceState::Lrs],
        });

        // Disabled handle: no-op.
        trace.emit_telemetry(&Telemetry::disabled());

        let sink = Arc::new(MemorySink::new());
        let telemetry = Telemetry::new(sink.clone());
        trace.emit_telemetry(&telemetry);
        let events = sink.snapshot();
        let points = events
            .iter()
            .filter(|e| matches!(&e.kind, EventKind::Point { name, .. } if name == "device.cycle"))
            .count();
        assert_eq!(points, 2);
        let read_attrs = events
            .iter()
            .find_map(|e| match &e.kind {
                EventKind::Point { name, attrs } if name == "device.cycle" => attr(attrs, "kind")
                    .and_then(|v| v.as_str())
                    .filter(|k| *k == "read")
                    .map(|_| attrs.clone()),
                _ => None,
            })
            .expect("read cycle bridged");
        assert_eq!(attr(&read_attrs, "cell").and_then(|v| v.as_u64()), Some(0));
        let report = RunReport::from_events(&events);
        assert_eq!(report.counter("device.cycles"), 2);
    }

    #[test]
    fn cycle_kind_display() {
        assert_eq!(CycleKind::Init.to_string(), "init");
        assert_eq!(CycleKind::VOp { be: true }.to_string(), "V-op (BE=1)");
        assert_eq!(
            CycleKind::ROp {
                inputs: vec![0, 1],
                output: 2
            }
            .to_string(),
            "R-op (in=[0, 1], out=2)"
        );
        assert_eq!(
            CycleKind::Read {
                cell: 3,
                value: true
            }
            .to_string(),
            "read cell 3 -> 1"
        );
    }
}
