use std::fmt;

use serde::{Deserialize, Serialize};

/// The stateful (resistance-input) operation family of a technology.
///
/// R-ops are technology-dependent (paper §II-A): BiFeO₃ devices implement
/// the MAGIC NOR gate, whereas Ta₂O₅ devices exhibit negated implication
/// (NIMP), compatible with the IMPLY logic family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ROpKind {
    /// MAGIC NOR: `r = ¬(a ∨ b)` (BiFeO₃, used in all of the paper's
    /// experiments).
    #[default]
    MagicNor,
    /// Negated implication: `r = a · ¬b` (Ta₂O₅ / IMPLY family).
    Nimp,
}

impl ROpKind {
    /// The logical function computed on the two input states.
    pub fn eval(self, a: bool, b: bool) -> bool {
        match self {
            Self::MagicNor => !(a | b),
            Self::Nimp => a & !b,
        }
    }

    /// Whether the operation is commutative in its inputs.
    pub fn is_commutative(self) -> bool {
        matches!(self, Self::MagicNor)
    }

    /// The state the output device must be initialized to before the
    /// operation executes (LRS = `true` for MAGIC NOR, HRS = `false` for
    /// NIMP-style gates writing into a cleared device).
    pub fn output_init(self) -> bool {
        match self {
            Self::MagicNor => true,
            Self::Nimp => false,
        }
    }
}

impl fmt::Display for ROpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MagicNor => write!(f, "MAGIC-NOR"),
            Self::Nimp => write!(f, "NIMP"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_tables() {
        assert!(ROpKind::MagicNor.eval(false, false));
        assert!(!ROpKind::MagicNor.eval(true, false));
        assert!(!ROpKind::MagicNor.eval(false, true));
        assert!(!ROpKind::MagicNor.eval(true, true));

        assert!(!ROpKind::Nimp.eval(false, false));
        assert!(ROpKind::Nimp.eval(true, false));
        assert!(!ROpKind::Nimp.eval(false, true));
        assert!(!ROpKind::Nimp.eval(true, true));
    }

    #[test]
    fn commutativity_and_init() {
        assert!(ROpKind::MagicNor.is_commutative());
        assert!(!ROpKind::Nimp.is_commutative());
        assert!(ROpKind::MagicNor.output_init());
        assert!(!ROpKind::Nimp.output_init());
    }
}
