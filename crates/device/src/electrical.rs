use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};

use crate::{DeviceState, Variability};

/// Electrical parameters of a BFO-class self-rectifying bipolar memristor.
///
/// The values are synthetic but chosen to reproduce the qualitative behaviour
/// of the paper's BiFeO₃ devices (Au/BFO/Pt stacks, interface-driven bipolar
/// switching): a ~100× HRS/LRS window, write pulses well above the SET
/// threshold, a small read voltage, and a MAGIC supply `V0` that clears all
/// four divider constraints simultaneously:
///
/// * output RESET when some input is LRS: `V0·R_LRS/(R_LRS‖R_HRS + R_LRS) ≈
///   0.50·V0 > v_reset_th`,
/// * no output switch when both inputs are HRS: `≈ 0.02·V0 ≪ v_reset_th`,
/// * no disturb of an HRS input when the other is LRS:
///   `V0 − 0.50·V0 < v_set_th`,
/// * no disturb when both inputs are HRS (they then absorb nearly the whole
///   supply): `V0 < v_set_th`.
///
/// The last constraint forces `v_reset_th < v_set_th / 2` — the asymmetric
/// thresholds are physical for self-rectifying BFO stacks, whose SET and
/// RESET barriers differ.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElectricalParams {
    /// Nominal low-resistance-state resistance in Ω.
    pub r_lrs: f64,
    /// Nominal high-resistance-state resistance in Ω.
    pub r_hrs: f64,
    /// Write-pulse amplitude in V (applied as TE or BE level 1).
    pub v_write: f64,
    /// SET threshold in V: a TE−BE voltage above this switches HRS → LRS.
    pub v_set_th: f64,
    /// RESET threshold magnitude in V: a TE−BE voltage below `−v_reset_th`
    /// switches LRS → HRS.
    pub v_reset_th: f64,
    /// Read-pulse amplitude in V (non-destructive).
    pub v_read: f64,
    /// MAGIC R-op supply voltage in V.
    pub v0_magic: f64,
    /// Variation corner applied to devices built from these parameters.
    pub variability: Variability,
}

impl ElectricalParams {
    /// The nominal BFO-like parameter set used throughout the benchmarks.
    pub fn bfo() -> Self {
        Self {
            r_lrs: 1.0e6,
            r_hrs: 1.0e8,
            v_write: 7.0,
            v_set_th: 6.5,
            v_reset_th: 2.8,
            v_read: 2.0,
            v0_magic: 6.2,
            variability: Variability::NONE,
        }
    }

    /// The same parameters with a different variation corner.
    pub fn with_variability(mut self, variability: Variability) -> Self {
        self.variability = variability;
        self
    }

    /// The read-current threshold separating logical 1 from 0:
    /// `v_read / √(R_LRS·R_HRS)` (geometric midpoint of the window).
    pub fn read_current_threshold(&self) -> f64 {
        self.v_read / (self.r_lrs * self.r_hrs).sqrt()
    }
}

impl Default for ElectricalParams {
    fn default() -> Self {
        Self::bfo()
    }
}

/// A memristive device model usable in a [`LineArray`](crate::LineArray).
///
/// The trait is object-safe on purpose: arrays store boxed models so ideal
/// and electrical devices can be mixed in tests.
pub trait Memristor {
    /// The current internal state.
    fn state(&self) -> DeviceState;

    /// Forces the state, bypassing electrical behaviour (used for
    /// initialization, e.g. pre-setting MAGIC output cells to LRS).
    fn force_state(&mut self, state: DeviceState);

    /// The current resistance in Ω.
    fn resistance(&self) -> f64;

    /// Applies a TE−BE voltage for one write cycle, possibly switching the
    /// device. `rng` drives cycle-to-cycle variation.
    fn apply_voltage(&mut self, v: f64, rng: &mut SmallRng);

    /// Re-draws fabrication-time (D2D) randomness from `rng` as if the
    /// device were fabricated anew with `params`, resetting it to HRS.
    ///
    /// Implementations must consume exactly as many draws as their
    /// fabrication path, so an array of mixed device models stays
    /// draw-for-draw aligned with an all-healthy array at the same seed —
    /// the property [`LineArray::reseed`](crate::LineArray::reseed) relies
    /// on for reproducible fault campaigns. The default consumes nothing
    /// and only resets the state (ideal devices have no fabrication
    /// randomness).
    fn refabricate(&mut self, params: &ElectricalParams, rng: &mut SmallRng) {
        let _ = (params, rng);
        self.force_state(DeviceState::Hrs);
    }
}

/// An ideal device: exact thresholds, nominal resistances, no variation.
///
/// Used for functional verification of schedules, where electrical noise
/// would only obscure logic errors.
#[derive(Debug, Clone)]
pub struct IdealMemristor {
    state: DeviceState,
    params: ElectricalParams,
}

impl IdealMemristor {
    /// A fresh device in the HRS (logic 0) state.
    pub fn new() -> Self {
        Self {
            state: DeviceState::Hrs,
            params: ElectricalParams::bfo(),
        }
    }
}

impl Default for IdealMemristor {
    fn default() -> Self {
        Self::new()
    }
}

impl Memristor for IdealMemristor {
    fn state(&self) -> DeviceState {
        self.state
    }

    fn force_state(&mut self, state: DeviceState) {
        self.state = state;
    }

    fn resistance(&self) -> f64 {
        match self.state {
            DeviceState::Lrs => self.params.r_lrs,
            DeviceState::Hrs => self.params.r_hrs,
        }
    }

    fn apply_voltage(&mut self, v: f64, _rng: &mut SmallRng) {
        if v >= self.params.v_set_th {
            self.state = DeviceState::Lrs;
        } else if v <= -self.params.v_reset_th {
            self.state = DeviceState::Hrs;
        }
    }
}

/// A BFO-class device with D2D-perturbed resistances and C2C-jittered
/// switching thresholds.
#[derive(Debug, Clone)]
pub struct BfoMemristor {
    state: DeviceState,
    params: ElectricalParams,
    /// D2D-perturbed resistances, fixed at construction ("fabrication").
    r_lrs: f64,
    r_hrs: f64,
}

impl BfoMemristor {
    /// Fabricates a device: draws its D2D resistance factors from `rng`.
    pub fn fabricate(params: ElectricalParams, rng: &mut SmallRng) -> Self {
        let v = params.variability;
        Self {
            state: DeviceState::Hrs,
            r_lrs: params.r_lrs * v.d2d_factor(rng),
            r_hrs: params.r_hrs * v.d2d_factor(rng),
            params,
        }
    }

    /// The device's fabricated (D2D-perturbed) LRS resistance.
    pub fn r_lrs(&self) -> f64 {
        self.r_lrs
    }

    /// The device's fabricated (D2D-perturbed) HRS resistance.
    pub fn r_hrs(&self) -> f64 {
        self.r_hrs
    }
}

impl Memristor for BfoMemristor {
    fn state(&self) -> DeviceState {
        self.state
    }

    fn force_state(&mut self, state: DeviceState) {
        self.state = state;
    }

    fn resistance(&self) -> f64 {
        match self.state {
            DeviceState::Lrs => self.r_lrs,
            DeviceState::Hrs => self.r_hrs,
        }
    }

    fn apply_voltage(&mut self, v: f64, rng: &mut SmallRng) {
        let jitter = self.params.variability.c2c_factor(rng);
        if v >= self.params.v_set_th * jitter {
            self.state = DeviceState::Lrs;
        } else if v <= -self.params.v_reset_th * jitter {
            self.state = DeviceState::Hrs;
        }
    }

    fn refabricate(&mut self, params: &ElectricalParams, rng: &mut SmallRng) {
        *self = Self::fabricate(*params, rng);
    }
}

/// A defective device permanently stuck in one state — the yield failure
/// mode motivating the paper's interest in simple, repairable topologies
/// ("yield … can make reliable operation unattainable", §I; discrete line
/// arrays allow replacing devices "upon failure in operation").
///
/// Write pulses and initialization have no effect; the device always reads
/// back its stuck state.
#[derive(Debug, Clone)]
pub struct StuckMemristor {
    stuck: DeviceState,
    params: ElectricalParams,
}

impl StuckMemristor {
    /// A device stuck at the given state.
    pub fn new(stuck: DeviceState) -> Self {
        Self::with_params(stuck, ElectricalParams::bfo())
    }

    /// A stuck device whose (fixed) resistance follows `params`.
    pub fn with_params(stuck: DeviceState, params: ElectricalParams) -> Self {
        Self { stuck, params }
    }
}

impl Memristor for StuckMemristor {
    fn state(&self) -> DeviceState {
        self.stuck
    }

    fn force_state(&mut self, _state: DeviceState) {}

    fn resistance(&self) -> f64 {
        match self.stuck {
            DeviceState::Lrs => self.params.r_lrs,
            DeviceState::Hrs => self.params.r_hrs,
        }
    }

    fn apply_voltage(&mut self, _v: f64, _rng: &mut SmallRng) {}

    fn refabricate(&mut self, params: &ElectricalParams, rng: &mut SmallRng) {
        // Consume the two D2D draws the healthy device in this position
        // would have made, so the rest of the array sees the same stream.
        let v = params.variability;
        let _ = v.d2d_factor(rng);
        let _ = v.d2d_factor(rng);
        self.params = *params;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn stuck_devices_ignore_everything() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut d = StuckMemristor::new(DeviceState::Lrs);
        d.apply_voltage(-10.0, &mut rng);
        d.force_state(DeviceState::Hrs);
        assert_eq!(d.state(), DeviceState::Lrs);
        assert_eq!(d.resistance(), ElectricalParams::bfo().r_lrs);
    }

    #[test]
    fn ideal_device_switches_at_thresholds() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut d = IdealMemristor::new();
        assert_eq!(d.state(), DeviceState::Hrs);
        d.apply_voltage(7.0, &mut rng);
        assert_eq!(d.state(), DeviceState::Lrs);
        assert_eq!(d.resistance(), 1.0e6);
        d.apply_voltage(3.0, &mut rng); // below both thresholds: hold
        assert_eq!(d.state(), DeviceState::Lrs);
        d.apply_voltage(-7.0, &mut rng);
        assert_eq!(d.state(), DeviceState::Hrs);
        assert_eq!(d.resistance(), 1.0e8);
    }

    #[test]
    fn bfo_without_variation_is_nominal() {
        let mut rng = SmallRng::seed_from_u64(0);
        let d = BfoMemristor::fabricate(ElectricalParams::bfo(), &mut rng);
        assert_eq!(d.r_lrs(), 1.0e6);
        assert_eq!(d.r_hrs(), 1.0e8);
    }

    #[test]
    fn bfo_d2d_perturbs_resistances() {
        let mut rng = SmallRng::seed_from_u64(3);
        let params = ElectricalParams::bfo().with_variability(Variability::HIGH);
        let a = BfoMemristor::fabricate(params, &mut rng);
        let b = BfoMemristor::fabricate(params, &mut rng);
        assert_ne!(a.r_lrs(), b.r_lrs());
        assert!(a.r_lrs() > 0.0 && b.r_hrs() > 0.0);
    }

    #[test]
    fn magic_margins_hold_nominally() {
        // The documented inequalities that make the MAGIC NOR work.
        let p = ElectricalParams::bfo();
        let r_par = 1.0 / (1.0 / p.r_lrs + 1.0 / p.r_hrs); // one input LRS
        let v_out = p.v0_magic * p.r_lrs / (r_par + p.r_lrs);
        assert!(
            v_out > p.v_reset_th,
            "output must RESET when an input is LRS"
        );
        assert!(
            p.v0_magic - v_out < p.v_set_th,
            "LRS/HRS input pair must not be disturbed"
        );
        let r_par_hh = p.r_hrs / 2.0; // both inputs HRS
        let v_out_hh = p.v0_magic * p.r_lrs / (r_par_hh + p.r_lrs);
        assert!(
            v_out_hh < p.v_reset_th / 4.0,
            "output must hold when both inputs are HRS"
        );
        assert!(
            p.v0_magic < p.v_set_th,
            "HRS/HRS input pair must not be disturbed"
        );
        assert!(
            p.v_write > p.v_set_th,
            "write pulses must clear the SET threshold"
        );
        assert!(
            p.v_write > p.v_reset_th,
            "write pulses must clear the RESET threshold"
        );
    }

    #[test]
    fn read_current_threshold_separates_states() {
        let p = ElectricalParams::bfo();
        let i_lrs = p.v_read / p.r_lrs;
        let i_hrs = p.v_read / p.r_hrs;
        let th = p.read_current_threshold();
        assert!(i_lrs > th && th > i_hrs);
    }
}
