//! Canonical seed-derivation helpers.
//!
//! Every randomized path in the workspace — Monte-Carlo device sweeps,
//! fault-campaign trials, and the scenario fuzzer — derives its RNG streams
//! from a single root seed through the functions in this module, so a run is
//! bit-for-bit reproducible from that one number regardless of thread count.
//! Centralizing the derivations here keeps the streams documented and stops
//! two call sites from accidentally colliding on the same substream.

/// Substream tag for [`crate::monte_carlo::v_op_error_rate`].
pub const STREAM_MC_VOP: u64 = 0x5eed_0001;
/// Substream tag for [`crate::monte_carlo::r_op_error_rate`].
pub const STREAM_MC_ROP: u64 = 0x5eed_0002;
/// Substream tag for [`crate::monte_carlo::cascade_error_rates`].
pub const STREAM_MC_CASCADE: u64 = 0x5eed_0003;
/// Substream tag for [`crate::monte_carlo::cascade_cumulative_error_rates`].
pub const STREAM_MC_CUMULATIVE: u64 = 0x5eed_0004;

/// Derives the RNG seed for a tagged substream of `root`.
///
/// Tags partition the root seed's randomness into independent named streams
/// (the `STREAM_*` constants above). The derivation is a plain XOR: cheap,
/// bijective in `root` for a fixed tag, and stable across releases — trial
/// seeds recorded in campaign reports stay replayable.
#[must_use]
pub fn substream(root: u64, tag: u64) -> u64 {
    root ^ tag
}

/// Derives the per-trial array seed for trial `t` of a run rooted at `root`.
///
/// This is the documented `root + (t << 16)` (wrapping) derivation shared by
/// the Monte-Carlo module and the fault-campaign runner; campaign reports
/// record `root` so any individual trial can be rebuilt from the report.
#[must_use]
pub fn trial_seed(root: u64, t: u32) -> u64 {
    root.wrapping_add(u64::from(t) << 16)
}

/// Derives a well-mixed child seed for item `index` of a run rooted at
/// `root`.
///
/// Unlike [`substream`]/[`trial_seed`] (kept XOR/additive for backwards
/// compatibility with recorded reports), this uses a splitmix64 finalizer so
/// consecutive indices produce statistically independent seeds. The scenario
/// fuzzer uses it to give every generated scenario its own stream.
#[must_use]
pub fn split(root: u64, index: u64) -> u64 {
    let mut z = root
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_seed_matches_documented_derivation() {
        assert_eq!(trial_seed(0xfa11, 0), 0xfa11);
        assert_eq!(trial_seed(0xfa11, 3), 0xfa11 + (3 << 16));
        // Wrapping, not panicking, at the top of the range.
        assert_eq!(trial_seed(u64::MAX, 1), (1u64 << 16) - 1);
    }

    #[test]
    fn substream_tags_are_distinct() {
        let tags = [
            STREAM_MC_VOP,
            STREAM_MC_ROP,
            STREAM_MC_CASCADE,
            STREAM_MC_CUMULATIVE,
        ];
        for (i, a) in tags.iter().enumerate() {
            for b in &tags[i + 1..] {
                assert_ne!(substream(42, *a), substream(42, *b));
            }
        }
    }

    #[test]
    fn split_is_deterministic_and_spreads_consecutive_indices() {
        assert_eq!(split(42, 7), split(42, 7));
        let a = split(42, 0);
        let b = split(42, 1);
        assert_ne!(a, b);
        // Consecutive indices should differ in many bits, not just the low
        // ones — a weak smoke test of the mixing.
        assert!((a ^ b).count_ones() > 8);
    }
}
