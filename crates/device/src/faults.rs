//! Declarative fault-injection plans for line arrays.
//!
//! The paper motivates mixed-mode synthesis with device non-idealities:
//! stuck devices ("yield … can make reliable operation unattainable", §I),
//! D2D/C2C variation (§II-B), and transient upsets. A [`FaultPlan`] is a
//! serializable description of one such fault scenario; applied to a seed it
//! deterministically builds a faulty [`LineArray`], so campaigns over many
//! plans × seeds are reproducible from their JSON alone.
//!
//! The campaign *runner* — which executes a compiled schedule against these
//! arrays and attributes divergence to cells — lives in `mm-circuit`
//! (`campaign` module), because schedules are defined there; this module is
//! only about building the faulty hardware.
//!
//! # Example
//!
//! ```
//! use mm_device::{DeviceState, ElectricalParams, FaultPlan};
//!
//! let plan = FaultPlan::named("stuck-cell-2")
//!     .with_stuck(2, DeviceState::Hrs)
//!     .with_transient(0, 3); // cell 0 flips after schedule cycle 3
//! let array = plan.build_array(4, ElectricalParams::bfo(), 7);
//! assert_eq!(array.state(2), DeviceState::Hrs);
//! assert_eq!(plan.flips_at(3), vec![0]);
//! ```

use serde::{Deserialize, Serialize};

use crate::{DeviceState, ElectricalParams, LineArray, Variability};

/// A permanent stuck-at fault on one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StuckFault {
    /// Index of the defective cell.
    pub cell: usize,
    /// The state the cell is stuck in (HRS = stuck-open, LRS = stuck-short).
    pub state: DeviceState,
}

/// A transient upset: a cell's state flips at a chosen point of the
/// schedule.
///
/// The flip is injected immediately *after* the schedule cycle with index
/// [`cycle`](Self::cycle) executes (0-based over the compiled cycle list),
/// modeling a C2C glitch or external disturbance between two driven cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TransientFault {
    /// Index of the upset cell.
    pub cell: usize,
    /// 0-based schedule cycle after which the flip occurs.
    pub cycle: usize,
}

/// A declarative fault-injection scenario for one campaign leg.
///
/// Combines any number of stuck-at faults, transient bit-flips, and an
/// optional variability corner override. Serializable to JSON so campaign
/// reports can embed the exact plan they ran.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Human-readable plan name, echoed in campaign reports.
    pub name: String,
    /// Permanent stuck-at faults.
    pub stuck: Vec<StuckFault>,
    /// Transient upsets at chosen cycles.
    pub transients: Vec<TransientFault>,
    /// Variation corner override; `None` keeps the array parameters' own
    /// corner.
    pub variability: Option<Variability>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given name — the healthy-control
    /// leg of a campaign.
    pub fn named(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Adds a stuck-at fault.
    pub fn with_stuck(mut self, cell: usize, state: DeviceState) -> Self {
        self.stuck.push(StuckFault { cell, state });
        self
    }

    /// Adds a transient flip of `cell` after schedule cycle `cycle`.
    pub fn with_transient(mut self, cell: usize, cycle: usize) -> Self {
        self.transients.push(TransientFault { cell, cycle });
        self
    }

    /// Overrides the variation corner for arrays built from this plan.
    pub fn with_variability(mut self, variability: Variability) -> Self {
        self.variability = Some(variability);
        self
    }

    /// Whether the plan injects no faults at all (a healthy control).
    pub fn is_healthy(&self) -> bool {
        self.stuck.is_empty()
            && self.transients.is_empty()
            && self.variability.is_none_or(|v| v == Variability::NONE)
    }

    /// The cells with permanent stuck-at faults, sorted and deduplicated.
    pub fn stuck_cells(&self) -> Vec<usize> {
        let mut cells: Vec<usize> = self.stuck.iter().map(|f| f.cell).collect();
        cells.sort_unstable();
        cells.dedup();
        cells
    }

    /// The cells that flip immediately after schedule cycle `cycle`.
    pub fn flips_at(&self, cycle: usize) -> Vec<usize> {
        self.transients
            .iter()
            .filter(|t| t.cycle == cycle)
            .map(|t| t.cell)
            .collect()
    }

    /// The largest cell index the plan references, if it references any.
    pub fn max_cell(&self) -> Option<usize> {
        self.stuck
            .iter()
            .map(|f| f.cell)
            .chain(self.transients.iter().map(|t| t.cell))
            .max()
    }

    /// Builds an `n`-cell BFO array realizing this plan under `seed`.
    ///
    /// The array is fabricated exactly like `LineArray::bfo(n, params, seed)`
    /// (with the plan's variability override applied), then the stuck cells
    /// are swapped in — so the healthy cells carry the *same* D2D draws as a
    /// fault-free array at the same seed, and any behavioural divergence is
    /// attributable to the injected faults alone. Transient faults are not
    /// applied here; the campaign runner injects them mid-schedule via
    /// [`LineArray::flip_state`].
    ///
    /// # Panics
    ///
    /// Panics if the plan references a cell index `≥ n`.
    pub fn build_array(&self, n: usize, params: ElectricalParams, seed: u64) -> LineArray {
        if let Some(max) = self.max_cell() {
            assert!(
                max < n,
                "fault plan {:?} references cell {max}, array has {n}",
                self.name
            );
        }
        let params = match self.variability {
            Some(v) => params.with_variability(v),
            None => params,
        };
        let mut array = LineArray::bfo(n, params, seed);
        for f in &self.stuck {
            array.set_stuck(f.cell, f.state);
        }
        array
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_and_queries() {
        let plan = FaultPlan::named("p")
            .with_stuck(4, DeviceState::Hrs)
            .with_stuck(1, DeviceState::Lrs)
            .with_stuck(4, DeviceState::Hrs)
            .with_transient(2, 5)
            .with_transient(3, 5)
            .with_transient(2, 7);
        assert_eq!(plan.stuck_cells(), vec![1, 4]);
        assert_eq!(plan.flips_at(5), vec![2, 3]);
        assert_eq!(plan.flips_at(6), Vec::<usize>::new());
        assert_eq!(plan.max_cell(), Some(4));
        assert!(!plan.is_healthy());
        assert!(FaultPlan::named("control").is_healthy());
        assert!(FaultPlan::named("c")
            .with_variability(Variability::NONE)
            .is_healthy());
        assert!(!FaultPlan::named("c")
            .with_variability(Variability::HIGH)
            .is_healthy());
    }

    #[test]
    fn build_array_applies_stuck_cells() {
        let plan = FaultPlan::named("stuck").with_stuck(1, DeviceState::Lrs);
        let mut array = plan.build_array(3, ElectricalParams::bfo(), 9);
        assert_eq!(array.state(1), DeviceState::Lrs);
        array.reset(&[false, false, false]);
        assert_eq!(array.state(1), DeviceState::Lrs, "stuck ignores reset");
        assert_eq!(array.state(0), DeviceState::Hrs);
    }

    #[test]
    #[should_panic(expected = "references cell")]
    fn build_array_rejects_out_of_range_plans() {
        let plan = FaultPlan::named("oob").with_stuck(5, DeviceState::Hrs);
        plan.build_array(3, ElectricalParams::bfo(), 0);
    }

    #[test]
    fn json_round_trip() {
        let plan = FaultPlan::named("corner")
            .with_stuck(0, DeviceState::Hrs)
            .with_transient(1, 2)
            .with_variability(Variability::HIGH);
        let json = serde_json::to_string(&plan).expect("serialize");
        let back: FaultPlan = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(plan, back);
    }
}
