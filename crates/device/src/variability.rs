use rand::Rng;
use serde::{Deserialize, Serialize};

/// Device-to-device (D2D) and cycle-to-cycle (C2C) variation parameters.
///
/// Both are modeled as log-normal multiplicative factors, the standard
/// first-order model for resistive-switching variability:
///
/// * **D2D** perturbs each device's nominal LRS/HRS resistances once at
///   fabrication time.
/// * **C2C** jitters the switching thresholds on every write cycle.
///
/// The paper's motivation (§I, §II-B) is that R-ops suffer from both kinds
/// of variation — the voltage divider senses the perturbed resistances —
/// while V-ops apply the full write voltage regardless of device resistance
/// and are only exposed to threshold jitter. [`crate::monte_carlo`]
/// quantifies this.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Variability {
    /// Log-normal σ of the per-device resistance factor (0 = ideal).
    pub d2d_sigma: f64,
    /// Log-normal σ of the per-cycle threshold factor (0 = ideal).
    pub c2c_sigma: f64,
}

impl Variability {
    /// No variation at all: every device is nominal on every cycle.
    pub const NONE: Self = Self {
        d2d_sigma: 0.0,
        c2c_sigma: 0.0,
    };

    /// A mild corner representative of a mature process.
    pub const LOW: Self = Self {
        d2d_sigma: 0.05,
        c2c_sigma: 0.02,
    };

    /// A harsh corner representative of an emerging technology.
    pub const HIGH: Self = Self {
        d2d_sigma: 0.25,
        c2c_sigma: 0.08,
    };

    /// Draws a log-normal multiplicative factor `exp(σ·Z)` for D2D.
    pub fn d2d_factor(&self, rng: &mut impl Rng) -> f64 {
        lognormal_factor(self.d2d_sigma, rng)
    }

    /// Draws a log-normal multiplicative factor `exp(σ·Z)` for C2C.
    pub fn c2c_factor(&self, rng: &mut impl Rng) -> f64 {
        lognormal_factor(self.c2c_sigma, rng)
    }
}

impl Default for Variability {
    fn default() -> Self {
        Self::NONE
    }
}

/// `exp(σ·Z)` with `Z ~ N(0,1)` via Box–Muller (avoids an extra dependency
/// on a distributions crate).
fn lognormal_factor(sigma: f64, rng: &mut impl Rng) -> f64 {
    if sigma == 0.0 {
        return 1.0;
    }
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (sigma * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zero_sigma_is_exactly_one() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(Variability::NONE.d2d_factor(&mut rng), 1.0);
        assert_eq!(Variability::NONE.c2c_factor(&mut rng), 1.0);
    }

    #[test]
    fn lognormal_statistics_are_plausible() {
        let mut rng = SmallRng::seed_from_u64(42);
        let v = Variability {
            d2d_sigma: 0.2,
            c2c_sigma: 0.0,
        };
        let n = 20_000;
        let mut sum_log = 0.0;
        let mut sum_log_sq = 0.0;
        for _ in 0..n {
            let f = v.d2d_factor(&mut rng);
            assert!(f > 0.0);
            let l = f.ln();
            sum_log += l;
            sum_log_sq += l * l;
        }
        let mean = sum_log / n as f64;
        let var = sum_log_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "log-mean {mean} should be near 0");
        assert!(
            (var.sqrt() - 0.2).abs() < 0.01,
            "log-σ {} should be near 0.2",
            var.sqrt()
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let v = Variability::HIGH;
        let a: Vec<f64> = {
            let mut rng = SmallRng::seed_from_u64(7);
            (0..5).map(|_| v.d2d_factor(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = SmallRng::seed_from_u64(7);
            (0..5).map(|_| v.d2d_factor(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
