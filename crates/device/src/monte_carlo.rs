//! Monte-Carlo reliability analysis of V-ops and R-ops under variation.
//!
//! The paper motivates mixed-mode circuits with the observation that
//! stateful R-ops "suffer from high sensitivity to non-ideal electrical
//! behavior, especially device-to-device (D2D) and cycle-to-cycle (C2C)
//! variations during the voltage divider operation, leading to higher error
//! rates than for V-ops", and that cascaded R-ops are worse still (§I,
//! §II-B). This module quantifies those claims on the electrical model:
//!
//! * [`v_op_error_rate`] — a single write cycle with random target value.
//! * [`r_op_error_rate`] — a single MAGIC NOR with random input states.
//! * [`cascade_error_rates`] — a chain of NORs of the given depth, where
//!   each stage consumes the previous stage's (possibly corrupted) output.
//!
//! # Example
//!
//! ```
//! use mm_device::{monte_carlo, ElectricalParams, Variability};
//!
//! let params = ElectricalParams::bfo().with_variability(Variability::HIGH);
//! let v = monte_carlo::v_op_error_rate(params, 2_000, 1);
//! let r = monte_carlo::r_op_error_rate(params, 2_000, 1);
//! assert!(v <= r, "V-ops should be at least as reliable as R-ops");
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{seeds, DeviceState, ElectricalParams, LineArray};

/// Fraction of failed single-device V-op writes over `trials` random
/// (initial state, TE, BE) triples.
pub fn v_op_error_rate(params: ElectricalParams, trials: u32, seed: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seeds::substream(seed, seeds::STREAM_MC_VOP));
    let mut failures = 0u32;
    // One array for the whole run; reseeding re-draws D2D per trial without
    // re-boxing the device models (this loop used to allocate per trial).
    let mut array = LineArray::bfo(1, params, seed);
    for t in 0..trials {
        let s0 = rng.gen::<bool>();
        let te = rng.gen::<bool>();
        let be = rng.gen::<bool>();
        array.reseed(seeds::trial_seed(seed, t));
        array.reset(&[s0]);
        array.v_op_cycle(&[Some(te)], be);
        let expected = crate::vop::apply(DeviceState::from_bool(s0), te, be);
        if array.state(0) != expected {
            failures += 1;
        }
    }
    f64::from(failures) / f64::from(trials.max(1))
}

/// Fraction of failed single MAGIC NOR executions over `trials` random
/// input-state pairs (fresh devices each trial, so D2D is resampled).
pub fn r_op_error_rate(params: ElectricalParams, trials: u32, seed: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seeds::substream(seed, seeds::STREAM_MC_ROP));
    let mut failures = 0u32;
    let mut array = LineArray::bfo(3, params, seed);
    for t in 0..trials {
        let a = rng.gen::<bool>();
        let b = rng.gen::<bool>();
        array.reseed(seeds::trial_seed(seed, t));
        array.reset(&[a, b, true]);
        array.magic_nor(&[0, 1], 2);
        if array.state(2).to_bool() == (a | b) {
            failures += 1;
        }
    }
    f64::from(failures) / f64::from(trials.max(1))
}

/// Error rate of NOR chains of depth `1..=max_depth`.
///
/// Stage `k` computes `NOR(out_{k−1}, aux_k)` on fresh output devices; the
/// returned vector element `k−1` is the probability that stage `k`'s output
/// differs from the ideal chain value. Errors compound with depth — the
/// paper's argument against deeply cascaded stateful logic.
pub fn cascade_error_rates(
    params: ElectricalParams,
    max_depth: usize,
    trials: u32,
    seed: u64,
) -> Vec<f64> {
    let mut failures = vec![0u32; max_depth];
    let mut rng = SmallRng::seed_from_u64(seeds::substream(seed, seeds::STREAM_MC_CASCADE));
    // Cells: 0 = initial input, 1..=max_depth auxiliary inputs,
    // max_depth+1.. outputs of each stage.
    let n_cells = 1 + max_depth + max_depth;
    let mut array = LineArray::bfo(n_cells, params, seed);
    for t in 0..trials {
        let mut init = vec![false; n_cells];
        let x0 = rng.gen::<bool>();
        init[0] = x0;
        let mut ideal = x0;
        let mut aux_values = Vec::with_capacity(max_depth);
        for k in 0..max_depth {
            let aux = rng.gen::<bool>();
            init[1 + k] = aux;
            aux_values.push(aux);
            init[1 + max_depth + k] = true; // outputs pre-set to 1
        }
        array.reseed(seeds::trial_seed(seed, t));
        array.reset(&init);
        let mut prev = 0usize;
        for k in 0..max_depth {
            let out = 1 + max_depth + k;
            array.magic_nor(&[prev, 1 + k], out);
            ideal = !(ideal | aux_values[k]);
            if array.state(out).to_bool() != ideal {
                failures[k] += 1;
                // Keep going: later stages consume the corrupted value, as
                // they would on real hardware.
                ideal = array.state(out).to_bool();
                // Record only the *first* divergence per stage; subsequent
                // stages are measured against the corrupted-but-propagated
                // reference so each stage's marginal error is counted.
            }
            prev = out;
        }
    }
    failures
        .into_iter()
        .map(|f| f64::from(f) / f64::from(trials.max(1)))
        .collect()
}

/// Cumulative probability that a NOR chain of each depth produces a wrong
/// final value (errors are *not* forgiven downstream).
pub fn cascade_cumulative_error_rates(
    params: ElectricalParams,
    max_depth: usize,
    trials: u32,
    seed: u64,
) -> Vec<f64> {
    let mut failures = vec![0u32; max_depth];
    let mut rng = SmallRng::seed_from_u64(seeds::substream(seed, seeds::STREAM_MC_CUMULATIVE));
    let n_cells = 1 + max_depth + max_depth;
    let mut array = LineArray::bfo(n_cells, params, seed);
    for t in 0..trials {
        let mut init = vec![false; n_cells];
        let x0 = rng.gen::<bool>();
        init[0] = x0;
        let mut aux_values = Vec::with_capacity(max_depth);
        for k in 0..max_depth {
            let aux = rng.gen::<bool>();
            init[1 + k] = aux;
            aux_values.push(aux);
            init[1 + max_depth + k] = true;
        }
        array.reseed(seeds::trial_seed(seed, t));
        array.reset(&init);
        let mut ideal = x0;
        let mut prev = 0usize;
        for k in 0..max_depth {
            let out = 1 + max_depth + k;
            array.magic_nor(&[prev, 1 + k], out);
            ideal = !(ideal | aux_values[k]);
            if array.state(out).to_bool() != ideal {
                failures[k] += 1;
            }
            prev = out;
        }
    }
    failures
        .into_iter()
        .map(|f| f64::from(f) / f64::from(trials.max(1)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Variability;

    #[test]
    fn no_variation_means_no_errors() {
        let params = ElectricalParams::bfo();
        assert_eq!(v_op_error_rate(params, 300, 7), 0.0);
        assert_eq!(r_op_error_rate(params, 300, 7), 0.0);
        assert!(cascade_error_rates(params, 4, 100, 7)
            .iter()
            .all(|&e| e == 0.0));
    }

    #[test]
    fn r_ops_are_less_reliable_than_v_ops_under_d2d() {
        // D2D only: the voltage divider senses resistances, a direct write
        // does not — the paper's core reliability argument.
        let params = ElectricalParams::bfo().with_variability(Variability {
            d2d_sigma: 0.5,
            c2c_sigma: 0.0,
        });
        let v = v_op_error_rate(params, 1500, 11);
        let r = r_op_error_rate(params, 1500, 11);
        assert_eq!(v, 0.0, "V-ops are immune to pure D2D variation");
        assert!(r > 0.0, "R-ops must show D2D-induced failures");
    }

    #[test]
    fn cumulative_cascade_errors_grow_with_depth() {
        let params = ElectricalParams::bfo().with_variability(Variability {
            d2d_sigma: 0.45,
            c2c_sigma: 0.05,
        });
        let rates = cascade_cumulative_error_rates(params, 5, 1200, 23);
        assert!(
            rates.last().expect("non-empty") >= rates.first().expect("non-empty"),
            "deep chains cannot be more reliable than shallow ones: {rates:?}"
        );
        assert!(rates.iter().any(|&e| e > 0.0));
    }
}
