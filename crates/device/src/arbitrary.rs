//! Randomized generators (and shrinkers) for device-layer fuzz inputs.
//!
//! The scenario fuzzer draws [`FaultPlan`]s, [`Variability`] corners, and
//! [`ElectricalParams`] sweep points from these functions. Everything is a
//! pure function of the passed RNG, so a scenario is reproducible from its
//! seed alone. Shrinking goes through the vendored
//! [`proptest::shrink::Shrink`] trait: a failing plan shrinks by dropping
//! faults, never by inventing new ones.

use proptest::shrink::Shrink;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::{DeviceState, ElectricalParams, FaultPlan, Variability};

/// Draws a variability corner: one of the named corners or a random
/// low-to-moderate sigma pair.
pub fn variability(rng: &mut SmallRng) -> Variability {
    match rng.gen_range(0u8..4) {
        0 => Variability::NONE,
        1 => Variability::LOW,
        2 => Variability::HIGH,
        _ => Variability {
            d2d_sigma: f64::from(rng.gen_range(0u32..60)) / 100.0,
            c2c_sigma: f64::from(rng.gen_range(0u32..20)) / 100.0,
        },
    }
}

/// Number of vetted electrical sweep corners ([`params_corner`]).
pub const N_PARAMS_CORNERS: u8 = 4;

/// The vetted electrical sweep corner with index `i` (taken modulo
/// [`N_PARAMS_CORNERS`], so any `u8` is a valid corner id).
///
/// Every corner keeps the MAGIC and read margins intact (pinned by the
/// `sweep_corners_stay_error_free_when_healthy` test), so a healthy device
/// under any corner still computes correctly — sweeps stress the model
/// without making clean runs flaky. Corner ids are stable: fuzz scenarios
/// serialize the id, not the parameters.
pub fn params_corner(i: u8) -> ElectricalParams {
    let base = ElectricalParams::bfo();
    match i % N_PARAMS_CORNERS {
        0 => base,
        1 => ElectricalParams {
            v_read: 1.5,
            ..base
        },
        2 => ElectricalParams {
            v_read: 2.5,
            ..base
        },
        _ => ElectricalParams {
            v_write: 7.2,
            ..base
        },
    }
}

/// Draws an electrical sweep point from the vetted corner set.
pub fn params(rng: &mut SmallRng) -> ElectricalParams {
    params_corner(rng.gen_range(0u8..N_PARAMS_CORNERS))
}

/// Draws a fault plan over an array of `n_cells` cells whose transient
/// flips land in `0..max_cycles`.
///
/// The plan references only cells `< n_cells`, so it is always in range for
/// a schedule placed on that array. Roughly one plan in five is healthy
/// (no faults at all), exercising the control path.
pub fn fault_plan(rng: &mut SmallRng, n_cells: usize, max_cycles: usize) -> FaultPlan {
    assert!(n_cells > 0, "fault plans need at least one cell");
    let mut plan = FaultPlan::named("fuzz");
    for _ in 0..rng.gen_range(0usize..=2) {
        let state = if rng.gen::<bool>() {
            DeviceState::Lrs
        } else {
            DeviceState::Hrs
        };
        plan = plan.with_stuck(rng.gen_range(0..n_cells), state);
    }
    if max_cycles > 0 {
        for _ in 0..rng.gen_range(0usize..=2) {
            plan = plan.with_transient(rng.gen_range(0..n_cells), rng.gen_range(0..max_cycles));
        }
    }
    if rng.gen_range(0u8..10) < 3 {
        plan = plan.with_variability(variability(rng));
    }
    plan
}

impl Shrink for FaultPlan {
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for i in 0..self.stuck.len() {
            let mut p = self.clone();
            p.stuck.remove(i);
            out.push(p);
        }
        for i in 0..self.transients.len() {
            let mut p = self.clone();
            p.transients.remove(i);
            out.push(p);
        }
        if self.variability.is_some() {
            let mut p = self.clone();
            p.variability = None;
            out.push(p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monte_carlo;
    use proptest::shrink::minimize;
    use rand::SeedableRng;

    #[test]
    fn generation_is_seed_deterministic() {
        let draw = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..16)
                .map(|_| fault_plan(&mut rng, 8, 10))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn plans_stay_in_range() {
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..200 {
            let plan = fault_plan(&mut rng, 6, 12);
            assert!(plan.max_cell().is_none_or(|c| c < 6), "{plan:?}");
            assert!(plan.transients.iter().all(|t| t.cycle < 12));
        }
    }

    #[test]
    fn sweep_corners_stay_error_free_when_healthy() {
        // The whole point of the vetted corner set: no corner may break a
        // healthy device, or fuzz control runs become flaky.
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..16 {
            let p = params(&mut rng);
            assert_eq!(monte_carlo::v_op_error_rate(p, 64, 3), 0.0, "{p:?}");
            assert_eq!(monte_carlo::r_op_error_rate(p, 64, 3), 0.0, "{p:?}");
        }
    }

    #[test]
    fn shrinking_drops_faults_down_to_the_culprit() {
        let plan = FaultPlan::named("fuzz")
            .with_stuck(3, DeviceState::Lrs)
            .with_stuck(1, DeviceState::Hrs)
            .with_transient(2, 4)
            .with_variability(Variability::HIGH);
        // Pretend only the stuck fault on cell 1 matters.
        let shrunk = minimize(plan, |p| p.stuck.iter().any(|s| s.cell == 1));
        assert_eq!(shrunk.stuck.len(), 1);
        assert_eq!(shrunk.stuck[0].cell, 1);
        assert!(shrunk.transients.is_empty());
        assert!(shrunk.variability.is_none());
    }
}
