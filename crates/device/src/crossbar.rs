//! A 2D memristive crossbar — the paper's future-work platform (§VI).
//!
//! Cells sit at wordline × bitline intersections; a cell `(r, c)` sees the
//! voltage `V_wl[r] − V_bl[c]`. Compared to the 1D line array this brings
//!
//! * **new possibilities**: MAGIC R-ops execute *SIMD-parallel* — a single
//!   bitline bias pattern makes every selected row compute the same NOR on
//!   its own cells ([`Crossbar::row_nor`]), and symmetrically for columns
//!   ([`Crossbar::col_nor`]);
//! * **new complexities**: during V-op cycles the TE is shared along a row
//!   and the BE along a column ("restrictions on TEs in addition to BEs"),
//!   so a line-array program embeds naturally as *one column* driven in
//!   line-array mode ([`Crossbar::v_op_column`]).
//!
//! The latency upside is quantified by
//! [`mm_circuit`](../mm_circuit/index.html)'s R-op dependency-depth
//! analysis; this module provides the device-level substrate and its
//! executable semantics.
//!
//! # Example
//!
//! ```
//! use mm_device::{Crossbar, DeviceState};
//!
//! let mut xbar = Crossbar::ideal(2, 3);
//! // Row 0 holds (1, 0), row 1 holds (0, 0); outputs in column 2 pre-set.
//! xbar.force_state(0, 0, DeviceState::Lrs);
//! xbar.force_state(0, 2, DeviceState::Lrs);
//! xbar.force_state(1, 2, DeviceState::Lrs);
//! // One cycle: both rows compute NOR(col0, col1) into col2 in parallel.
//! xbar.row_nor(&[0, 1], 2, &[0, 1]);
//! assert_eq!(xbar.state(0, 2), DeviceState::Hrs); // NOR(1, 0) = 0
//! assert_eq!(xbar.state(1, 2), DeviceState::Lrs); // NOR(0, 0) = 1
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::{BfoMemristor, DeviceState, ElectricalParams, IdealMemristor, Memristor};

/// A 2D crossbar of memristors; see the module docs.
pub struct Crossbar {
    rows: usize,
    cols: usize,
    cells: Vec<Box<dyn Memristor>>,
    params: ElectricalParams,
    rng: SmallRng,
    cycles: u64,
}

impl std::fmt::Debug for Crossbar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Crossbar")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("cycles", &self.cycles)
            .finish()
    }
}

impl Crossbar {
    /// An ideal `rows × cols` crossbar, all cells HRS.
    pub fn ideal(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            cells: (0..rows * cols)
                .map(|_| Box::new(IdealMemristor::new()) as Box<dyn Memristor>)
                .collect(),
            params: ElectricalParams::bfo(),
            rng: SmallRng::seed_from_u64(0),
            cycles: 0,
        }
    }

    /// A BFO crossbar fabricated with `params`; `seed` drives D2D and C2C
    /// randomness.
    pub fn bfo(rows: usize, cols: usize, params: ElectricalParams, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let cells = (0..rows * cols)
            .map(|_| Box::new(BfoMemristor::fabricate(params, &mut rng)) as Box<dyn Memristor>)
            .collect();
        Self {
            rows,
            cols,
            cells,
            params,
            rng,
            cycles: 0,
        }
    }

    /// Number of wordlines (rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of bitlines (columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Cycles executed so far (each `row_nor`/`col_nor`/`v_op_column` call
    /// is one cycle regardless of how many rows/columns it touches — the
    /// crossbar's whole point).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The state of cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn state(&self, row: usize, col: usize) -> DeviceState {
        self.cells[self.index(row, col)].state()
    }

    /// Forces cell `(row, col)` into `state` (initialization).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn force_state(&mut self, row: usize, col: usize, state: DeviceState) {
        let i = self.index(row, col);
        self.cells[i].force_state(state);
    }

    /// Clears the whole array to HRS and resets the cycle counter.
    pub fn reset(&mut self) {
        for c in &mut self.cells {
            c.force_state(DeviceState::Hrs);
        }
        self.cycles = 0;
    }

    /// SIMD MAGIC NOR along rows: every row in `rows` computes
    /// `¬(∨ cells in input_cols)` into its `out_col` cell in one cycle.
    ///
    /// The bias pattern lives entirely on the bitlines (V0 on the input
    /// columns, output column in the RESET orientation), so all selected
    /// rows see it simultaneously; unselected rows are left floating.
    /// Output cells must have been initialized to LRS.
    ///
    /// # Panics
    ///
    /// Panics if `input_cols` is empty, any index is out of range, or
    /// `out_col` is also an input column.
    pub fn row_nor(&mut self, input_cols: &[usize], out_col: usize, rows: &[usize]) {
        assert!(
            !input_cols.is_empty(),
            "row NOR needs at least one input column"
        );
        assert!(
            !input_cols.contains(&out_col),
            "output column must differ from inputs"
        );
        assert!(input_cols.iter().all(|&c| c < self.cols) && out_col < self.cols);
        let v0 = self.params.v0_magic;
        for &r in rows {
            assert!(r < self.rows, "row {r} out of range");
            // Per-row voltage divider, as in LineArray::magic_nor.
            let g_par: f64 = input_cols
                .iter()
                .map(|&c| 1.0 / self.cells[self.index(r, c)].resistance())
                .sum();
            let r_par = 1.0 / g_par;
            let r_out = self.cells[self.index(r, out_col)].resistance();
            let v_node = v0 * r_out / (r_par + r_out);
            let i_out = self.index(r, out_col);
            self.cells[i_out].apply_voltage(-v_node, &mut self.rng);
            for &c in input_cols {
                let i_in = self.index(r, c);
                self.cells[i_in].apply_voltage(v0 - v_node, &mut self.rng);
            }
        }
        self.cycles += 1;
    }

    /// SIMD MAGIC NOR along columns: every column in `cols` computes
    /// `¬(∨ cells in input_rows)` into its `out_row` cell in one cycle.
    ///
    /// # Panics
    ///
    /// Panics if `input_rows` is empty, any index is out of range, or
    /// `out_row` is also an input row.
    pub fn col_nor(&mut self, input_rows: &[usize], out_row: usize, cols: &[usize]) {
        assert!(
            !input_rows.is_empty(),
            "column NOR needs at least one input row"
        );
        assert!(
            !input_rows.contains(&out_row),
            "output row must differ from inputs"
        );
        assert!(input_rows.iter().all(|&r| r < self.rows) && out_row < self.rows);
        let v0 = self.params.v0_magic;
        for &c in cols {
            assert!(c < self.cols, "column {c} out of range");
            let g_par: f64 = input_rows
                .iter()
                .map(|&r| 1.0 / self.cells[self.index(r, c)].resistance())
                .sum();
            let r_par = 1.0 / g_par;
            let r_out = self.cells[self.index(out_row, c)].resistance();
            let v_node = v0 * r_out / (r_par + r_out);
            let i_out = self.index(out_row, c);
            self.cells[i_out].apply_voltage(-v_node, &mut self.rng);
            for &r in input_rows {
                let i_in = self.index(r, c);
                self.cells[i_in].apply_voltage(v0 - v_node, &mut self.rng);
            }
        }
        self.cycles += 1;
    }

    /// One line-array-mode V-op cycle on a single column: each selected
    /// row's cell sees its own TE level (wordline) against the shared BE
    /// level on the column's bitline. `te[r] = None` leaves row `r`'s
    /// wordline at the BE level (a dummy).
    ///
    /// This is exactly how a 1D line-array program embeds into a crossbar;
    /// the *other* columns' bitlines are driven to follow each wordline? No
    /// single level can follow several distinct wordlines, so all remaining
    /// bitlines float and their cells see half-select stress — modeled by
    /// applying half of the worst-case differential to them.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range or `te.len() != rows`.
    pub fn v_op_column(&mut self, col: usize, te: &[Option<bool>], be: bool) {
        assert!(col < self.cols, "column {col} out of range");
        assert_eq!(te.len(), self.rows, "one TE level per row required");
        let vw = self.params.v_write;
        let v_be = if be { vw } else { 0.0 };
        let mut max_wl: f64 = v_be;
        let mut min_wl: f64 = v_be;
        for (r, lvl) in te.iter().enumerate() {
            let v_te = match lvl {
                Some(true) => vw,
                Some(false) => 0.0,
                None => v_be,
            };
            max_wl = max_wl.max(v_te);
            min_wl = min_wl.min(v_te);
            let i = self.index(r, col);
            self.cells[i].apply_voltage(v_te - v_be, &mut self.rng);
        }
        // Half-select stress on the other columns: floating bitlines settle
        // near the average wordline level; each off-column cell sees at
        // most half of the wordline swing. With the BFO thresholds
        // (v_write/2 < v_reset_th) this never switches ideal cells but can
        // flip marginal ones under C2C jitter — the crossbar's "new
        // complexity".
        let v_float = (max_wl + min_wl) / 2.0;
        for c in 0..self.cols {
            if c == col {
                continue;
            }
            for (r, lvl) in te.iter().enumerate() {
                let v_te = match lvl {
                    Some(true) => vw,
                    Some(false) => 0.0,
                    None => v_be,
                };
                let i = self.index(r, c);
                self.cells[i].apply_voltage((v_te - v_float) / 2.0, &mut self.rng);
            }
        }
        self.cycles += 1;
    }

    /// Reads cell `(row, col)` non-destructively.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn read(&mut self, row: usize, col: usize) -> DeviceState {
        let i = self.index(row, col);
        let current = self.params.v_read / self.cells[i].resistance();
        self.cycles += 1;
        DeviceState::from_bool(current > self.params.read_current_threshold())
    }

    fn index(&self, row: usize, col: usize) -> usize {
        assert!(
            row < self.rows && col < self.cols,
            "cell ({row}, {col}) out of range"
        );
        row * self.cols + col
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simd_row_nor_computes_all_rows_in_one_cycle() {
        let mut x = Crossbar::ideal(4, 3);
        let inputs = [(false, false), (true, false), (false, true), (true, true)];
        for (r, &(a, b)) in inputs.iter().enumerate() {
            x.force_state(r, 0, DeviceState::from_bool(a));
            x.force_state(r, 1, DeviceState::from_bool(b));
            x.force_state(r, 2, DeviceState::Lrs);
        }
        x.row_nor(&[0, 1], 2, &[0, 1, 2, 3]);
        assert_eq!(x.cycles(), 1, "all four NORs in one cycle");
        for (r, &(a, b)) in inputs.iter().enumerate() {
            assert_eq!(x.state(r, 2).to_bool(), !(a | b), "row {r}");
            assert_eq!(x.state(r, 0).to_bool(), a, "inputs must survive");
            assert_eq!(x.state(r, 1).to_bool(), b);
        }
    }

    #[test]
    fn col_nor_mirrors_row_nor() {
        let mut x = Crossbar::ideal(3, 4);
        let inputs = [(false, false), (true, false), (false, true), (true, true)];
        for (c, &(a, b)) in inputs.iter().enumerate() {
            x.force_state(0, c, DeviceState::from_bool(a));
            x.force_state(1, c, DeviceState::from_bool(b));
            x.force_state(2, c, DeviceState::Lrs);
        }
        x.col_nor(&[0, 1], 2, &[0, 1, 2, 3]);
        for (c, &(a, b)) in inputs.iter().enumerate() {
            assert_eq!(x.state(2, c).to_bool(), !(a | b), "column {c}");
        }
    }

    #[test]
    fn unselected_rows_are_untouched() {
        let mut x = Crossbar::ideal(2, 3);
        x.force_state(0, 0, DeviceState::Lrs);
        x.force_state(0, 2, DeviceState::Lrs);
        x.force_state(1, 0, DeviceState::Lrs);
        x.force_state(1, 2, DeviceState::Lrs);
        x.row_nor(&[0, 1], 2, &[0]); // only row 0 selected
        assert_eq!(x.state(0, 2), DeviceState::Hrs);
        assert_eq!(x.state(1, 2), DeviceState::Lrs, "row 1 must not execute");
    }

    #[test]
    fn v_op_column_behaves_like_a_line_array() {
        let mut x = Crossbar::ideal(3, 2);
        // Column 0 as a line array: write 1 into row 0, 0 into row 1,
        // dummy row 2.
        x.v_op_column(0, &[Some(true), Some(false), None], false);
        assert_eq!(x.state(0, 0), DeviceState::Lrs);
        assert_eq!(x.state(1, 0), DeviceState::Hrs);
        assert_eq!(x.state(2, 0), DeviceState::Hrs);
        // Off-column cells must not have been disturbed (ideal devices,
        // half-select below thresholds).
        for r in 0..3 {
            assert_eq!(
                x.state(r, 1),
                DeviceState::Hrs,
                "half-selected cell ({r}, 1)"
            );
        }
    }

    #[test]
    fn half_select_margins_hold() {
        // The worst half-select differential must sit below both switching
        // thresholds for the nominal parameter set.
        let p = ElectricalParams::bfo();
        let worst = p.v_write / 2.0;
        assert!(worst < p.v_set_th, "half-select must not SET");
        assert!(worst < p.v_reset_th * 2.0, "documented stress margin");
    }

    #[test]
    fn double_inversion_copies_a_column() {
        // copy col0 -> col2 for all rows: NOR(col0 -> col1) then
        // NOR(col1 -> col2); two cycles regardless of row count.
        let mut x = Crossbar::ideal(4, 3);
        let values = [true, false, true, true];
        for (r, &v) in values.iter().enumerate() {
            x.force_state(r, 0, DeviceState::from_bool(v));
            x.force_state(r, 1, DeviceState::Lrs);
            x.force_state(r, 2, DeviceState::Lrs);
        }
        let all = [0, 1, 2, 3];
        x.row_nor(&[0], 1, &all); // col1 = ~col0
        x.row_nor(&[1], 2, &all); // col2 = ~col1 = col0
        assert_eq!(x.cycles(), 2);
        for (r, &v) in values.iter().enumerate() {
            assert_eq!(x.state(r, 2).to_bool(), v, "row {r}");
        }
    }

    #[test]
    fn bfo_crossbar_without_variation_is_ideal() {
        let mut x = Crossbar::bfo(2, 3, ElectricalParams::bfo(), 9);
        x.force_state(0, 0, DeviceState::Lrs);
        x.force_state(0, 2, DeviceState::Lrs);
        x.force_state(1, 2, DeviceState::Lrs);
        x.row_nor(&[0, 1], 2, &[0, 1]);
        assert_eq!(x.state(0, 2), DeviceState::Hrs);
        assert_eq!(x.state(1, 2), DeviceState::Lrs);
        assert_eq!(x.read(1, 2), DeviceState::Lrs);
    }

    #[test]
    #[should_panic(expected = "output column must differ")]
    fn overlapping_nor_rejected() {
        let mut x = Crossbar::ideal(1, 2);
        x.row_nor(&[0], 0, &[0]);
    }
}
