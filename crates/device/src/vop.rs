//! The voltage-input operation (V-op) of the paper's Table I.
//!
//! A write cycle applies logic levels to the top and bottom electrodes: a
//! write pulse encodes 1, its absence 0. When the electrodes agree the
//! device sees no net voltage and keeps its state; when they differ the
//! device is written to the TE value (TE = 1, BE = 0 is the SET polarity,
//! TE = 0, BE = 1 the RESET polarity).

use crate::DeviceState;

/// Applies one V-op to a device state: `V(s, TE, BE) = TE if TE ≠ BE
/// else s`.
///
/// # Example
///
/// ```
/// use mm_device::{vop, DeviceState};
///
/// let s = DeviceState::Hrs;
/// assert_eq!(vop::apply(s, true, false), DeviceState::Lrs); // SET
/// assert_eq!(vop::apply(s, true, true), s); // hold
/// ```
pub fn apply(state: DeviceState, te: bool, be: bool) -> DeviceState {
    if te == be {
        state
    } else {
        DeviceState::from_bool(te)
    }
}

/// The full Table I of the paper: every (s, TE, BE) combination.
///
/// Returned rows are `(s, te, be, next_state)`; useful for documentation
/// and exhaustiveness checks.
pub fn truth_table() -> [(DeviceState, bool, bool, DeviceState); 8] {
    let mut rows = [(DeviceState::Hrs, false, false, DeviceState::Hrs); 8];
    let mut i = 0;
    for s in [DeviceState::Hrs, DeviceState::Lrs] {
        for te in [false, true] {
            for be in [false, true] {
                rows[i] = (s, te, be, apply(s, te, be));
                i += 1;
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_table1() {
        // TE == BE holds the state; TE != BE writes TE.
        for s in [DeviceState::Hrs, DeviceState::Lrs] {
            assert_eq!(apply(s, false, false), s);
            assert_eq!(apply(s, true, true), s);
            assert_eq!(apply(s, true, false), DeviceState::Lrs);
            assert_eq!(apply(s, false, true), DeviceState::Hrs);
        }
    }

    #[test]
    fn truth_table_is_exhaustive() {
        let rows = truth_table();
        assert_eq!(rows.len(), 8);
        for (s, te, be, next) in rows {
            assert_eq!(next, apply(s, te, be));
        }
    }
}
