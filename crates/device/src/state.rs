use std::fmt;
use std::ops::Not;

use serde::{Deserialize, Serialize};

/// The internal state of a bipolar memristive device.
///
/// Following the paper (§II-A), the low-resistance state (LRS) encodes
/// logic 1 and the high-resistance state (HRS) logic 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceState {
    /// High-resistance state — logic 0.
    Hrs,
    /// Low-resistance state — logic 1.
    Lrs,
}

impl DeviceState {
    /// The logic value encoded by the state (LRS = 1).
    pub fn to_bool(self) -> bool {
        matches!(self, Self::Lrs)
    }

    /// The state encoding a logic value.
    pub fn from_bool(value: bool) -> Self {
        if value {
            Self::Lrs
        } else {
            Self::Hrs
        }
    }
}

impl From<bool> for DeviceState {
    fn from(value: bool) -> Self {
        Self::from_bool(value)
    }
}

impl From<DeviceState> for bool {
    fn from(state: DeviceState) -> bool {
        state.to_bool()
    }
}

impl Not for DeviceState {
    type Output = DeviceState;

    fn not(self) -> DeviceState {
        match self {
            Self::Hrs => Self::Lrs,
            Self::Lrs => Self::Hrs,
        }
    }
}

impl fmt::Display for DeviceState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Hrs => write!(f, "HRS"),
            Self::Lrs => write!(f, "LRS"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_round_trip() {
        assert_eq!(DeviceState::from_bool(true), DeviceState::Lrs);
        assert_eq!(DeviceState::from_bool(false), DeviceState::Hrs);
        assert!(DeviceState::Lrs.to_bool());
        assert!(!DeviceState::Hrs.to_bool());
        assert_eq!(!DeviceState::Lrs, DeviceState::Hrs);
        assert!(bool::from(DeviceState::from(true)));
    }

    #[test]
    fn display() {
        assert_eq!(DeviceState::Lrs.to_string(), "LRS");
        assert_eq!(DeviceState::Hrs.to_string(), "HRS");
    }
}
