//! Quickstart: synthesize an optimal mixed-mode 1-bit full adder, inspect
//! it, and run it on the simulated line array.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use memristive_mm::boolfn::generators;
use memristive_mm::circuit::Schedule;
use memristive_mm::device::LineArray;
use memristive_mm::synth::{SynthSpec, Synthesizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The function to realize: a full adder (x1 = a, x2 = b, x3 = carry-in;
    // outputs carry-out and sum).
    let adder = generators::ripple_adder(1);
    println!("specification: {adder}");

    // The paper's Table IV optimum: 2 MAGIC R-ops fed by 3 V-legs of 3
    // steps (N_St = 5, N_Dev = 5).
    let spec = SynthSpec::mixed_mode(&adder, 2, 3, 3)?;
    let outcome = Synthesizer::new().run(&spec)?;
    let circuit = outcome
        .circuit()
        .expect("the paper shows Φ(f, 9, 2) is satisfiable");
    println!(
        "\nsynthesized in {:.2?} ({} CNF vars, {} clauses):\n",
        outcome.total_time(),
        outcome.encode_stats.n_vars,
        outcome.encode_stats.n_clauses
    );
    print!("{}", circuit.to_text());

    let m = circuit.metrics();
    println!(
        "\ncost: {} compute steps on {} devices (paper: 5 steps, 5 devices)",
        m.n_steps, m.n_devices_structural
    );

    // Compile to a cycle-accurate schedule and execute every input on an
    // ideal line array.
    let schedule = Schedule::compile(circuit)?;
    println!("\nline-array execution ({} cells):", schedule.n_cells());
    println!("  a b c | cout sum");
    for x in 0..8u32 {
        let out = schedule.run_ideal(x);
        println!(
            "  {} {} {} |    {}   {}",
            (x >> 2) & 1,
            (x >> 1) & 1,
            x & 1,
            u8::from(out[0]),
            u8::from(out[1])
        );
    }

    // The same schedule on an electrical BiFeO3 model records a full
    // measurement trace (resistances, voltages, currents per cycle).
    let mut array = LineArray::bfo(schedule.n_cells(), Default::default(), 42);
    let out = schedule.execute(0b111, &mut array);
    println!(
        "\nelectrical run of 1+1+1: cout={} sum={}",
        u8::from(out[0]),
        u8::from(out[1])
    );
    println!(
        "recorded {} measurement cycles (print with trace().to_table())",
        array.trace().len()
    );
    Ok(())
}
