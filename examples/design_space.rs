//! Explore the designer's N_V/N_R trade-off the paper advertises:
//! synthesize the same function under different budget mixes and designer
//! constraints, and compare against the R-only baseline and the scalable
//! heuristic.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use memristive_mm::boolfn::generators;
use memristive_mm::sat::Budget;
use memristive_mm::synth::optimize::{minimize_mixed_mode, minimize_r_only};
use memristive_mm::synth::{heuristic, EncodeOptions, SynthSpec, Synthesizer};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let f = generators::xor_gate(3); // 3-input parity: hostile to V-ops
    println!("function: {f} ({})", f.output(0).expect("one output"));

    let synth =
        Synthesizer::new().with_budget(Budget::new().with_max_time(Duration::from_secs(60)));
    let options = EncodeOptions::recommended();

    // 1. Optimal mixed-mode: smallest N_R, then smallest N_VS.
    let mm = minimize_mixed_mode(&synth, &f, 4, 4, false, &options)?;
    let mm_best = mm.best.as_ref().expect("XOR3 is MM-realizable");
    let m = mm_best.metrics();
    println!(
        "\nmixed-mode optimum: N_R={} N_VS={} -> {} steps on {} devices ({} SAT calls{})",
        m.n_rops,
        m.n_vsteps,
        m.n_steps,
        m.n_devices_structural,
        mm.calls.len(),
        if mm.proven_optimal {
            ", optimality proven"
        } else {
            ""
        }
    );

    // 2. Conventional stateful-only baseline.
    let r_only = minimize_r_only(&synth, &f, 8, &options)?;
    let r_best = r_only.best.as_ref().expect("NOR logic is universal");
    let rm = r_best.metrics();
    println!(
        "R-only baseline:    N_R={} -> {} steps on {} devices",
        rm.n_rops, rm.n_steps, rm.n_devices_structural
    );

    // 3. The scalable heuristic (no optimality, no SAT).
    let h = heuristic::map(&f)?;
    let hm = h.metrics();
    println!(
        "heuristic mapper:   N_R={} -> {} steps on {} devices (milliseconds, any size)",
        hm.n_rops, hm.n_steps, hm.n_devices_structural
    );

    // 4. A designer constraint: no cascaded R-ops (low-fidelity devices).
    let spec =
        SynthSpec::mixed_mode(&f, m.n_rops, m.n_legs, m.n_vsteps)?.with_options(EncodeOptions {
            forbid_rop_cascade: true,
            ..options.clone()
        });
    let constrained = synth.run(&spec)?;
    println!(
        "no-cascade variant at the same budgets: {}",
        match constrained.circuit() {
            Some(_) => "still realizable".to_string(),
            None => "needs a larger budget (cascading was load-bearing)".to_string(),
        }
    );

    println!("\ntakeaway (paper §III): V-ops are cheap and parallel but not universal;");
    println!("a few R-ops close the gap, and the N_V/N_R mix is a designer knob.");
    Ok(())
}
