//! The paper's future work, working today: map functions *beyond* the
//! reach of optimal synthesis (more than 7 inputs) with the scalable
//! heuristic, verify them end to end on the line array, and measure the
//! optimality gap on functions small enough to also solve exactly.
//!
//! ```sh
//! cargo run --release --example beyond_exact
//! ```

use memristive_mm::boolfn::{generators, Gf2m};
use memristive_mm::circuit::Schedule;
use memristive_mm::sat::Budget;
use memristive_mm::synth::optimize::minimize_mixed_mode;
use memristive_mm::synth::{heuristic, EncodeOptions, Synthesizer};
use std::time::{Duration, Instant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Large functions: exact synthesis is hopeless, the mapper is instant.
    println!("heuristic mapping beyond the exact frontier:");
    let big: Vec<memristive_mm::boolfn::MultiOutputFn> = vec![
        generators::ripple_adder(4),               // 9 inputs
        generators::gf_multiplier(&Gf2m::gf16()?), // 8 inputs, 4 outputs
        generators::xor_gate(8),
    ];
    for f in &big {
        let t = Instant::now();
        let c = heuristic::map(f)?;
        let dt = t.elapsed();
        let m = c.metrics();
        let schedule = Schedule::compile(&c)?;
        let ok = schedule.verify(f);
        println!(
            "  {:<12} n={} N_O={}: N_R={:>3} N_St={:>3} N_Dev={:>3} in {dt:>9.2?} (verified: {})",
            f.name(),
            f.n_inputs(),
            f.n_outputs(),
            m.n_rops,
            m.n_steps,
            m.n_devices_structural,
            if ok { "OK" } else { "FAIL" }
        );
    }

    // Optimality gap on small functions.
    println!("\nheuristic vs optimal on small functions (60 s budget per SAT call):");
    let synth =
        Synthesizer::new().with_budget(Budget::new().with_max_time(Duration::from_secs(60)));
    for f in [
        generators::xor_gate(2),
        generators::majority_gate(3),
        generators::mux21(),
        generators::and_or_22(),
    ] {
        let h = heuristic::map(&f)?;
        let hm = h.metrics();
        let report = minimize_mixed_mode(&synth, &f, 3, 3, false, &EncodeOptions::recommended())?;
        match report.best {
            Some(best) => {
                let om = best.metrics();
                println!(
                    "  {:<12} heuristic: {} steps / {} dev   optimal: {} steps / {} dev",
                    f.name(),
                    hm.n_steps,
                    hm.n_devices_structural,
                    om.n_steps,
                    om.n_devices_structural
                );
            }
            None => println!(
                "  {:<12} heuristic: {} steps (exact search exceeded budget)",
                f.name(),
                hm.n_steps
            ),
        }
    }
    Ok(())
}
