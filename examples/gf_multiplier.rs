//! The paper's flagship demonstration end to end: synthesize the optimal
//! mixed-mode GF(2²) multiplier (Fig. 1) and replay the physical
//! experiment of Fig. 2 on the simulated BiFeO₃ line array — including a
//! run at a harsh variability corner to see the robustness the paper
//! highlights.
//!
//! ```sh
//! cargo run --release --example gf_multiplier
//! ```

use memristive_mm::boolfn::generators;
use memristive_mm::circuit::Schedule;
use memristive_mm::device::{ElectricalParams, LineArray, Variability};
use memristive_mm::synth::{SynthSpec, Synthesizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let f = generators::gf22_multiplier();
    // Fig. 1's budgets: 18 V-ops in 6 legs × 3 steps, 4 MAGIC NOR R-ops.
    let spec = SynthSpec::mixed_mode(&f, 4, 6, 3)?;
    let outcome = Synthesizer::new().run(&spec)?;
    let circuit = outcome
        .circuit()
        .expect("Φ(f_GFMUL, 18, 4) is satisfiable (paper Fig. 1)");
    println!("Fig. 1 circuit (one valid witness; solutions are not unique):\n");
    print!("{}", circuit.to_text());
    let m = circuit.metrics();
    println!(
        "\nN_R={} N_L={} N_VS={} N_St={} N_Dev={} — paper: 4/6/3/7/10\n",
        m.n_rops, m.n_legs, m.n_vsteps, m.n_steps, m.n_devices_structural
    );

    let schedule = Schedule::compile(circuit)?;

    // Fig. 2's experiment: input x1x2x3x4 = 1011, i.e. a = x, b = x+1.
    let x = 0b1011;
    let mut array = LineArray::bfo(schedule.n_cells(), ElectricalParams::bfo(), 2025);
    let out = schedule.execute(x, &mut array);
    println!(
        "input 1011: out1={} out2={} (paper measures 0 / 1)",
        u8::from(out[0]),
        u8::from(out[1])
    );
    println!(
        "{} cycles recorded (paper: 9 including readouts)\n",
        array.trace().len()
    );

    // Full multiplication table, executed electrically.
    println!("GF(2^2) multiplication table from the array:");
    println!("      b=00  b=01  b=10  b=11");
    for a in 0..4u32 {
        let mut row = format!("a={a:02b}");
        for b in 0..4u32 {
            let out = schedule.execute((a << 2) | b, &mut array);
            row.push_str(&format!("    {}{}", u8::from(out[0]), u8::from(out[1])));
        }
        println!("  {row}");
    }

    // Robustness: rerun the whole table at a harsh variation corner.
    let corners = [
        ("nominal", Variability::NONE),
        ("low", Variability::LOW),
        ("high", Variability::HIGH),
    ];
    println!("\nrobustness over variability corners (256 runs each):");
    for (name, v) in corners {
        let params = ElectricalParams::bfo().with_variability(v);
        let mut wrong = 0;
        for seed in 0..16u64 {
            let mut array = LineArray::bfo(schedule.n_cells(), params, seed);
            for x in 0..16u32 {
                let out = schedule.execute(x, &mut array);
                let want = f.eval(x);
                let got = (u32::from(out[0]) << 1) | u32::from(out[1]);
                if got != want {
                    wrong += 1;
                }
            }
        }
        println!("  {name:<8} corner: {wrong}/256 incorrect multiplications");
    }
    Ok(())
}
