//! End-to-end telemetry: a parallel minimization traced to JSONL must
//! reconstruct into exactly the report the in-memory event stream yields,
//! its per-rung outcomes must match the returned verdict, and the `mmsynth`
//! binary's `--trace-out`/`--report-json`/`--stats-json` flags must produce
//! parseable, schema-stamped artifacts.

use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;

use memristive_mm::boolfn::generators;
use memristive_mm::synth::optimize::parallel;
use memristive_mm::synth::{EncodeOptions, Synthesizer};
use memristive_mm::telemetry::{
    attr, EventKind, JsonlSink, MemorySink, MultiSink, RunReport, Telemetry, TelemetrySink,
    REPORT_SCHEMA_VERSION, TRACE_SCHEMA_VERSION,
};

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mmsynth_{}_{name}", std::process::id()))
}

#[test]
fn traced_minimize_roundtrips_and_matches_verdict() {
    let path = temp_path("e2e_trace.jsonl");
    let memory = Arc::new(MemorySink::new());
    let jsonl = Arc::new(JsonlSink::create(&path).expect("temp trace file"));
    let telemetry = Telemetry::new(Arc::new(MultiSink::new(vec![
        memory.clone() as Arc<dyn TelemetrySink>,
        jsonl as Arc<dyn TelemetrySink>,
    ])));
    telemetry.meta_event("minimize");
    let synth = Synthesizer::new().with_telemetry(telemetry.clone());
    let f = generators::xor_gate(2);
    let report = parallel::minimize_r_only(&synth, &f, 5, &EncodeOptions::recommended(), 8)
        .expect("xor specs encode");
    telemetry.flush();

    // The trace stamp is the first event emitted and carries the schema
    // version (MemorySink preserves emission order).
    let events = memory.snapshot();
    match &events.first().expect("events recorded").kind {
        EventKind::Point { name, attrs } => {
            assert_eq!(name, "meta");
            assert_eq!(
                attr(attrs, "trace_schema_version").and_then(|v| v.as_u64()),
                Some(TRACE_SCHEMA_VERSION)
            );
        }
        other => panic!("first event is not the meta stamp: {other:?}"),
    }

    // JSONL file and in-memory stream aggregate to the identical report —
    // the sharded writer loses inter-thread line order, the global sequence
    // numbers recover it.
    let text = std::fs::read_to_string(&path).expect("trace written");
    let from_file = RunReport::from_jsonl(&text).expect("every trace line parses");
    let from_memory = RunReport::from_events(&events);
    assert_eq!(
        from_file, from_memory,
        "JSONL and in-memory aggregation diverge"
    );
    assert_eq!(from_file.schema_version, REPORT_SCHEMA_VERSION);

    // Acceptance bar: the per-rung outcomes in the trace match the returned
    // verdict exactly — SAT at the optimum, no SAT below it, and the proof
    // anchored at the rung directly below the winner (rungs further down may
    // be lattice-closed by that UNSAT answer and cancel as "unknown").
    let best = report.best.expect("XOR2 is R-realizable");
    assert!(report.proven_optimal);
    let winner = u64::try_from(best.metrics().n_rops).expect("small");
    for rung in &from_file.rungs {
        match rung.n_rops.cmp(&winner) {
            std::cmp::Ordering::Less => assert!(
                rung.outcome == "unsat" || rung.outcome == "skipped" || rung.outcome == "unknown",
                "no rung below the optimum may be SAT, got {rung:?}"
            ),
            std::cmp::Ordering::Equal => {
                assert_eq!(rung.outcome, "sat", "the optimum rung is SAT")
            }
            std::cmp::Ordering::Greater => assert!(
                rung.outcome == "sat" || rung.outcome == "skipped",
                "above the optimum every rung is SAT or cancelled, got {rung:?}"
            ),
        }
    }
    assert!(
        from_file
            .rungs
            .iter()
            .any(|r| r.n_rops == winner && r.outcome == "sat"),
        "the winning rung must appear in the trace"
    );
    assert!(
        from_file
            .rungs
            .iter()
            .any(|r| r.n_rops == winner - 1 && r.outcome == "unsat"),
        "proven optimality must be anchored by an UNSAT answer at winner - 1"
    );

    let _ = std::fs::remove_file(&path);
}

#[test]
fn mmsynth_binary_writes_trace_report_and_stats() {
    let trace = temp_path("cli_trace.jsonl");
    let report = temp_path("cli_report.json");
    let stats = temp_path("cli_stats.json");
    let output = Command::new(env!("CARGO_BIN_EXE_mmsynth"))
        .args([
            "minimize",
            "--function",
            "xor2",
            "--r-only",
            "--max-rops",
            "4",
            "--jobs",
            "8",
        ])
        .arg("--trace-out")
        .arg(&trace)
        .arg("--report-json")
        .arg(&report)
        .arg("--stats-json")
        .arg(&stats)
        .output()
        .expect("mmsynth runs");
    assert!(
        output.status.success(),
        "mmsynth failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    // The trace parses line by line and aggregates into the same report
    // the binary wrote.
    let text = std::fs::read_to_string(&trace).expect("trace written");
    let from_trace = RunReport::from_jsonl(&text).expect("trace parses");
    let report_text = std::fs::read_to_string(&report).expect("report written");
    let written: RunReport = {
        use serde::Deserialize as _;
        let value = serde_json::from_str(&report_text).expect("report parses");
        RunReport::from_value(&value).expect("report deserializes")
    };
    assert_eq!(written.schema_version, REPORT_SCHEMA_VERSION);
    assert_eq!(written, from_trace, "written report diverges from trace");
    assert!(
        written.phase(&["synth"]).is_some(),
        "synthesis phase missing from {report_text}"
    );
    assert!(!written.rungs.is_empty(), "rung events missing");
    assert!(
        written
            .rungs
            .iter()
            .any(|r| r.n_rops == 3 && r.outcome == "sat"),
        "XOR2's optimum (3 R-ops) missing from the rung summaries"
    );

    // The stats sidecar is schema-stamped and consistent with the verdict.
    let stats_value: serde::Value =
        serde_json::from_str(&std::fs::read_to_string(&stats).expect("stats written"))
            .expect("stats parse");
    let get = |key: &str| match &stats_value {
        serde::Value::Object(fields) => fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| panic!("stats field {key} missing")),
        other => panic!("stats is not an object: {other:?}"),
    };
    assert_eq!(get("schema_version"), serde::Value::UInt(1));
    assert_eq!(get("proven_optimal"), serde::Value::Bool(true));
    match get("calls") {
        serde::Value::Array(calls) => assert!(!calls.is_empty(), "no call records"),
        other => panic!("calls is not an array: {other:?}"),
    }

    for path in [&trace, &report, &stats] {
        let _ = std::fs::remove_file(path);
    }
}
