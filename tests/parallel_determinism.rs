//! Thread-count invariance of the parallel portfolio minimizer.
//!
//! The engine's contract (see `optimize::parallel`): for fixed inputs and a
//! conflict-limited or unlimited budget, the reported optimum's cost
//! metrics and the `proven_optimal` bit are identical for every `jobs`
//! value; only the order and number of recorded calls may differ. These
//! tests pin that contract on Table IV workloads across `jobs` 1, 2 and 8,
//! plus whatever the `MMSYNTH_TEST_JOBS` environment variable names (the CI
//! matrix sets it to 1 and 4).

use memristive_mm::boolfn::generators;
use memristive_mm::sat::Budget;
use memristive_mm::synth::optimize::{parallel, OptimizeReport};
use memristive_mm::synth::{EncodeOptions, Synthesizer};

/// The jobs values every determinism test compares.
fn job_counts() -> Vec<usize> {
    let mut jobs = vec![1, 2, 8];
    if let Some(extra) = std::env::var("MMSYNTH_TEST_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        jobs.push(extra.max(1));
    }
    jobs.sort_unstable();
    jobs.dedup();
    jobs
}

/// Asserts the schedule-independent parts of two reports are identical.
fn assert_reports_identical(reference: &OptimizeReport, other: &OptimizeReport, label: &str) {
    assert_eq!(
        reference.proven_optimal, other.proven_optimal,
        "{label}: proven_optimal differs"
    );
    match (&reference.best, &other.best) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(a.metrics(), b.metrics(), "{label}: best op-counts differ");
        }
        _ => panic!("{label}: best presence differs across thread counts"),
    }
}

#[test]
fn adder1_mixed_mode_is_thread_count_invariant() {
    // Table IV row 1: the 1-bit adder's full minimization (N_R = 2,
    // N_VS = 3, proven) completes unbudgeted in well under a second.
    let f = generators::ripple_adder(1);
    let opts = EncodeOptions::recommended();
    let synth = Synthesizer::new();
    let mut reports = Vec::new();
    for jobs in job_counts() {
        let report = parallel::minimize_mixed_mode(&synth, &f, 3, 4, true, &opts, jobs)
            .expect("adder specs encode");
        reports.push((jobs, report));
    }
    for (jobs, report) in &reports[1..] {
        assert_reports_identical(&reports[0].1, report, &format!("adder1 jobs={jobs}"));
    }
    let best = reports[0].1.best.as_ref().expect("adder1 is MM-realizable");
    assert_eq!(best.metrics().n_rops, 2, "Table IV: N_R = 2");
    assert_eq!(best.metrics().n_vsteps, 3, "Table IV: N_VS = 3");
    assert!(reports[0].1.proven_optimal, "Table IV prints no ≤ marker");
}

#[test]
fn conflict_capped_adder2_is_thread_count_invariant() {
    // Table IV row 2, too hard to finish here: under a conflict cap the
    // ladder's Unknown/Unrealizable pattern — and therefore best and
    // proven_optimal — must still be identical for every thread count,
    // because a capped solver call is a deterministic function of the
    // formula alone.
    let f = generators::ripple_adder(2);
    let opts = EncodeOptions::recommended();
    let synth = Synthesizer::new().with_budget(Budget::new().with_max_conflicts(2_000));
    let mut reports = Vec::new();
    for jobs in job_counts() {
        let report = parallel::minimize_mixed_mode(&synth, &f, 4, 5, true, &opts, jobs)
            .expect("adder specs encode");
        reports.push((jobs, report));
    }
    for (jobs, report) in &reports[1..] {
        assert_reports_identical(&reports[0].1, report, &format!("adder2 jobs={jobs}"));
    }
    // Whatever the cap allowed, an unproven or missing optimum must never
    // be claimed proven.
    if reports[0].1.best.is_none() {
        assert!(!reports[0].1.proven_optimal);
    }
}

#[test]
fn telemetry_report_is_thread_count_invariant() {
    // Aggregate telemetry — the winning rung, the largest UNSAT rung, the
    // phase-name tree — must be identical for every jobs value, even though
    // the raw event stream (ordering, cancelled rungs, counter totals) is
    // schedule-dependent. Within one run, the rung events must agree with
    // the returned call records exactly.
    use std::sync::Arc;

    use memristive_mm::synth::optimize::SynthResultKind;
    use memristive_mm::telemetry::{MemorySink, RunReport, Telemetry};

    /// Phase names of the tree, flattened depth-first (counts and times are
    /// schedule-dependent; the shape is not).
    fn phase_names(nodes: &[memristive_mm::telemetry::PhaseNode], out: &mut Vec<String>) {
        for n in nodes {
            out.push(n.name.clone());
            phase_names(&n.children, out);
        }
    }

    let f = generators::xor_gate(2);
    let opts = EncodeOptions::recommended();
    let mut invariants = Vec::new();
    for jobs in job_counts() {
        let sink = Arc::new(MemorySink::new());
        let synth = Synthesizer::new().with_telemetry(Telemetry::new(sink.clone()));
        let report =
            parallel::minimize_r_only(&synth, &f, 5, &opts, jobs).expect("xor specs encode");
        let run = RunReport::from_events(&sink.snapshot());

        // Per-run consistency: every completed solver call appears as
        // exactly one rung event with the same budget and outcome.
        let mut from_calls: Vec<(u64, &str)> = report
            .calls
            .iter()
            .map(|c| {
                let outcome = match c.result {
                    SynthResultKind::Realizable => "sat",
                    SynthResultKind::Unrealizable => "unsat",
                    SynthResultKind::Unknown => "unknown",
                };
                (c.n_rops as u64, outcome)
            })
            .collect();
        let mut from_rungs: Vec<(u64, &str)> = run
            .rungs
            .iter()
            .filter(|r| r.outcome != "skipped")
            .map(|r| (r.n_rops, r.outcome.as_str()))
            .collect();
        from_calls.sort_unstable();
        from_rungs.sort_unstable();
        assert_eq!(
            from_calls, from_rungs,
            "jobs={jobs}: rung events and call records disagree"
        );

        // The verdict the rung events roll up to matches the returned
        // report: cheapest SAT rung = the optimum, largest UNSAT = its
        // optimality proof.
        let winner = run
            .rungs
            .iter()
            .filter(|r| r.outcome == "sat")
            .map(|r| r.n_rops)
            .min();
        assert_eq!(
            winner,
            report.best.as_ref().map(|c| c.metrics().n_rops as u64),
            "jobs={jobs}: winning rung disagrees with the returned circuit"
        );
        let max_unsat = run
            .rungs
            .iter()
            .filter(|r| r.outcome == "unsat")
            .map(|r| r.n_rops)
            .max();
        assert_eq!(max_unsat, Some(2), "jobs={jobs}: XOR2 is UNSAT at N_R ≤ 2");
        assert!(report.proven_optimal, "jobs={jobs}");

        let mut phases = Vec::new();
        phase_names(&run.phases, &mut phases);
        invariants.push((jobs, winner, max_unsat, phases));
    }
    for pair in invariants.windows(2) {
        let (ja, wa, ua, pa) = &pair[0];
        let (jb, wb, ub, pb) = &pair[1];
        assert_eq!(
            (wa, ua, pa),
            (wb, ub, pb),
            "jobs={ja} vs jobs={jb}: telemetry aggregates differ"
        );
    }
}

#[test]
fn xor2_r_only_is_thread_count_invariant() {
    // XOR2 needs exactly 3 MAGIC NOR gates; the proof (UNSAT at 1 and 2)
    // must survive any scheduling of the portfolio.
    let f = generators::xor_gate(2);
    let opts = EncodeOptions::recommended();
    let synth = Synthesizer::new();
    for jobs in job_counts() {
        let report =
            parallel::minimize_r_only(&synth, &f, 5, &opts, jobs).expect("xor specs encode");
        assert_eq!(
            report.best.expect("XOR2 is R-realizable").metrics().n_rops,
            3,
            "jobs={jobs}"
        );
        assert!(report.proven_optimal, "jobs={jobs}");
    }
}
