//! Thread-count invariance of the parallel portfolio minimizer.
//!
//! The engine's contract (see `optimize::parallel`): for fixed inputs and a
//! conflict-limited or unlimited budget, the reported optimum's cost
//! metrics and the `proven_optimal` bit are identical for every `jobs`
//! value; only the order and number of recorded calls may differ. These
//! tests pin that contract on Table IV workloads across `jobs` 1, 2 and 8,
//! plus whatever the `MMSYNTH_TEST_JOBS` environment variable names (the CI
//! matrix sets it to 1 and 4).

use memristive_mm::boolfn::generators;
use memristive_mm::sat::Budget;
use memristive_mm::synth::optimize::{parallel, OptimizeReport};
use memristive_mm::synth::{EncodeOptions, Synthesizer};

/// The jobs values every determinism test compares.
fn job_counts() -> Vec<usize> {
    let mut jobs = vec![1, 2, 8];
    if let Some(extra) = std::env::var("MMSYNTH_TEST_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        jobs.push(extra.max(1));
    }
    jobs.sort_unstable();
    jobs.dedup();
    jobs
}

/// Asserts the schedule-independent parts of two reports are identical.
fn assert_reports_identical(reference: &OptimizeReport, other: &OptimizeReport, label: &str) {
    assert_eq!(
        reference.proven_optimal, other.proven_optimal,
        "{label}: proven_optimal differs"
    );
    match (&reference.best, &other.best) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(a.metrics(), b.metrics(), "{label}: best op-counts differ");
        }
        _ => panic!("{label}: best presence differs across thread counts"),
    }
}

#[test]
fn adder1_mixed_mode_is_thread_count_invariant() {
    // Table IV row 1: the 1-bit adder's full minimization (N_R = 2,
    // N_VS = 3, proven) completes unbudgeted in well under a second.
    let f = generators::ripple_adder(1);
    let opts = EncodeOptions::recommended();
    let synth = Synthesizer::new();
    let mut reports = Vec::new();
    for jobs in job_counts() {
        let report = parallel::minimize_mixed_mode(&synth, &f, 3, 4, true, &opts, jobs)
            .expect("adder specs encode");
        reports.push((jobs, report));
    }
    for (jobs, report) in &reports[1..] {
        assert_reports_identical(&reports[0].1, report, &format!("adder1 jobs={jobs}"));
    }
    let best = reports[0].1.best.as_ref().expect("adder1 is MM-realizable");
    assert_eq!(best.metrics().n_rops, 2, "Table IV: N_R = 2");
    assert_eq!(best.metrics().n_vsteps, 3, "Table IV: N_VS = 3");
    assert!(reports[0].1.proven_optimal, "Table IV prints no ≤ marker");
}

#[test]
fn conflict_capped_adder2_is_thread_count_invariant() {
    // Table IV row 2, too hard to finish here: under a conflict cap the
    // ladder's Unknown/Unrealizable pattern — and therefore best and
    // proven_optimal — must still be identical for every thread count,
    // because a capped solver call is a deterministic function of the
    // formula alone.
    let f = generators::ripple_adder(2);
    let opts = EncodeOptions::recommended();
    let synth = Synthesizer::new().with_budget(Budget::new().with_max_conflicts(2_000));
    let mut reports = Vec::new();
    for jobs in job_counts() {
        let report = parallel::minimize_mixed_mode(&synth, &f, 4, 5, true, &opts, jobs)
            .expect("adder specs encode");
        reports.push((jobs, report));
    }
    for (jobs, report) in &reports[1..] {
        assert_reports_identical(&reports[0].1, report, &format!("adder2 jobs={jobs}"));
    }
    // Whatever the cap allowed, an unproven or missing optimum must never
    // be claimed proven.
    if reports[0].1.best.is_none() {
        assert!(!reports[0].1.proven_optimal);
    }
}

#[test]
fn xor2_r_only_is_thread_count_invariant() {
    // XOR2 needs exactly 3 MAGIC NOR gates; the proof (UNSAT at 1 and 2)
    // must survive any scheduling of the portfolio.
    let f = generators::xor_gate(2);
    let opts = EncodeOptions::recommended();
    let synth = Synthesizer::new();
    for jobs in job_counts() {
        let report =
            parallel::minimize_r_only(&synth, &f, 5, &opts, jobs).expect("xor specs encode");
        assert_eq!(
            report.best.expect("XOR2 is R-realizable").metrics().n_rops,
            3,
            "jobs={jobs}"
        );
        assert!(report.proven_optimal, "jobs={jobs}");
    }
}
