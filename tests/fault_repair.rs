//! End-to-end self-repair demo (ISSUE 3 acceptance criterion):
//!
//! 1. synthesize a circuit and place its schedule on a physical array,
//! 2. inject a stuck-at fault on a cell the schedule uses,
//! 3. run a fault campaign — it must detect the failure and attribute it
//!    to the faulty cell,
//! 4. repair: resynthesize with that cell avoided (the avoidance lives in
//!    the CNF formula, so the new schedule provably never touches it),
//! 5. execute the repaired schedule on the *faulty* array and check every
//!    input — and do it all again with DRAT certification on.

use memristive_mm::boolfn::generators;
use memristive_mm::circuit::campaign::{run_campaign, CampaignConfig, FaultClass};
use memristive_mm::circuit::FaultPlan;
use memristive_mm::device::DeviceState;
use memristive_mm::synth::repair::{synthesize_with_repair, RepairConfig, RepairStatus};
use memristive_mm::synth::{SynthSpec, Synthesizer};

const ARRAY_SIZE: usize = 8;

fn repair_demo(certify: bool) {
    let f = generators::xor_gate(2);
    let spec = SynthSpec::mixed_mode(&f, 1, 2, 2).expect("valid spec");
    let synth = Synthesizer::new().with_certification(certify);

    // Step 1: a healthy synthesis run, placed on the physical array.
    let outcome = synth
        .run(&spec.clone().with_cell_avoidance(ARRAY_SIZE, vec![]))
        .expect("synthesis errors are bugs here");
    let placed = outcome
        .placement
        .expect("avoidance specs carry a placement");
    assert!(placed.verify(&f), "healthy schedule must compute XOR2");

    // Step 2: stick a cell the schedule actually uses.
    let victim = *placed.used_cells().first().expect("schedule uses cells");
    let plans = vec![FaultPlan::named("stuck-victim").with_stuck(victim, DeviceState::Lrs)];

    // Step 3: the campaign detects and attributes the fault.
    let report =
        run_campaign(&placed, &plans, &CampaignConfig::default()).expect("plans are in range");
    assert!(report.any_failures(), "stuck used cell must cause failures");
    let attribution = &report.plans[0].attribution;
    assert!(
        attribution
            .iter()
            .any(|a| a.cell == victim && a.class == FaultClass::Stuck),
        "campaign must attribute the stuck cell {victim}, got {attribution:?}"
    );

    // Steps 4–5: the repair loop routes around the cell; the repaired
    // schedule passes the same campaign on the faulty array.
    let repair = synthesize_with_repair(&synth, &spec, &plans, &RepairConfig::new(ARRAY_SIZE))
        .expect("repair loop errors are bugs here");
    assert_eq!(repair.status, RepairStatus::Repaired);
    assert!(repair.avoided.contains(&victim));
    let repaired = repair.placement.expect("repaired runs carry a placement");
    assert!(
        !repaired.used_cells().contains(&victim),
        "repaired schedule must not touch the stuck cell"
    );
    assert!(repaired.verify(&f), "repaired schedule must compute XOR2");
    let final_report = repair.report.expect("repaired runs carry a report");
    assert!(
        !final_report.any_failures(),
        "repaired schedule must survive the campaign on the faulty array"
    );
}

#[test]
fn stuck_cell_repair_end_to_end() {
    repair_demo(false);
}

#[test]
fn stuck_cell_repair_end_to_end_certified() {
    repair_demo(true);
}

#[test]
fn repaired_schedule_agrees_with_spec_on_the_faulty_array() {
    // Belt and braces on top of the campaign's own verdict: execute the
    // repaired schedule input-by-input on an array with the stuck device
    // physically present and compare against the truth table.
    let f = generators::xor_gate(2);
    let spec = SynthSpec::mixed_mode(&f, 1, 2, 2).expect("valid spec");
    let plans = vec![FaultPlan::named("stuck-0").with_stuck(0, DeviceState::Lrs)];
    let repair = synthesize_with_repair(
        &Synthesizer::new(),
        &spec,
        &plans,
        &RepairConfig::new(ARRAY_SIZE),
    )
    .expect("repair loop errors are bugs here");
    assert!(repair.succeeded());
    let placed = repair.placement.expect("placement");
    let params = CampaignConfig::default().params;
    let n_o = f.n_outputs() as u32;
    for x in 0..(1u32 << f.n_inputs()) {
        let mut faulty = plans[0].build_array(placed.n_cells(), params, 99);
        let got = placed.execute(x, &mut faulty);
        let word = f.eval(x);
        let want: Vec<bool> = (0..n_o).map(|o| (word >> (n_o - 1 - o)) & 1 == 1).collect();
        assert_eq!(got, want, "repaired schedule wrong on input {x:#b}");
    }
}

#[test]
fn unrepairable_when_the_array_is_too_small() {
    // XOR2 needs 3 cells (2 legs + 1 R-op) plus feeds; with the only
    // spare cells stuck, repair must give up gracefully, not loop or die.
    let f = generators::xor_gate(2);
    let spec = SynthSpec::mixed_mode(&f, 1, 2, 2).expect("valid spec");
    let plans = vec![FaultPlan::named("dense")
        .with_stuck(0, DeviceState::Lrs)
        .with_stuck(1, DeviceState::Lrs)];
    let outcome = synthesize_with_repair(&Synthesizer::new(), &spec, &plans, &RepairConfig::new(4))
        .expect("repair reports failure in-band");
    assert!(!outcome.succeeded());
    assert!(matches!(outcome.status, RepairStatus::Unrepairable { .. }));
}

#[test]
fn avoidance_is_enforced_by_the_formula_not_the_placer() {
    // Synthesize with half the array marked dead: every decoded schedule
    // (not just a lucky placement) must avoid those cells, because the
    // encoder capped the literal-feed footprint. Exercises several dead
    // sets to make sure the constraint tracks the avoid list.
    let f = generators::xor_gate(2);
    for dead in [vec![0usize], vec![1, 3], vec![0, 1, 2]] {
        let spec = SynthSpec::mixed_mode(&f, 1, 2, 2)
            .expect("valid spec")
            .with_cell_avoidance(ARRAY_SIZE, dead.clone());
        let outcome = Synthesizer::new().run(&spec).expect("synthesis runs");
        let placed = outcome.placement.expect("placement accompanies SAT");
        let used = placed.used_cells();
        for d in &dead {
            assert!(!used.contains(d), "dead cell {d} used with dead={dead:?}");
        }
        assert!(placed.verify(&f));
    }
}
