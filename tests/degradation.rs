//! Graceful-degradation guarantees (ISSUE 3 acceptance criterion): a
//! deadline-bounded minimize must return a `Degraded` best-known result —
//! never an error, never a panic — at every portfolio width, and must
//! never claim `proven_optimal` for a degraded run.

use std::time::Duration;

use memristive_mm::boolfn::generators;
use memristive_mm::sat::{Budget, Deadline};
use memristive_mm::synth::optimize::parallel;
use memristive_mm::synth::optimize::{DegradeReason, OptimizeStatus};
use memristive_mm::synth::{EncodeOptions, Synthesizer};

fn expired_synth() -> Synthesizer {
    Synthesizer::new().with_budget(Budget::new().with_deadline(Deadline::after(Duration::ZERO)))
}

#[test]
fn zero_deadline_minimize_mixed_mode_degrades_at_every_width() {
    let f = generators::xor_gate(2);
    let options = EncodeOptions::recommended();
    for jobs in [1, 2, 8] {
        let report =
            parallel::minimize_mixed_mode(&expired_synth(), &f, 3, 3, false, &options, jobs)
                .expect("deadline expiry is degradation, not an error");
        assert!(
            matches!(
                report.status,
                OptimizeStatus::Degraded {
                    reason: DegradeReason::DeadlineExpired
                }
            ),
            "jobs={jobs}: expected DeadlineExpired, got {:?}",
            report.status
        );
        assert!(
            !report.proven_optimal,
            "jobs={jobs}: degraded runs must never claim optimality"
        );
        // With no solver progress possible, the best-known circuit is the
        // heuristic mapper's seed upper bound — present and correct.
        let best = report
            .best
            .as_ref()
            .expect("degraded minimize still returns a best-known circuit");
        assert!(best.implements(&f), "jobs={jobs}: seed upper bound wrong");
    }
}

#[test]
fn zero_deadline_minimize_r_only_never_errors() {
    let f = generators::and_gate(2);
    let options = EncodeOptions::recommended();
    for jobs in [1, 2, 8] {
        let report = parallel::minimize_r_only(&expired_synth(), &f, 4, &options, jobs)
            .expect("deadline expiry is degradation, not an error");
        assert!(report.status.is_degraded(), "jobs={jobs}");
        assert!(!report.proven_optimal, "jobs={jobs}");
    }
}

#[test]
fn sequential_minimize_degrades_too() {
    use memristive_mm::synth::optimize;
    let f = generators::xor_gate(2);
    let report = optimize::minimize_mixed_mode(
        &expired_synth(),
        &f,
        3,
        3,
        false,
        &EncodeOptions::recommended(),
    )
    .expect("deadline expiry is degradation, not an error");
    assert!(report.status.is_degraded());
    assert!(!report.proven_optimal);
    let best = report.best.expect("seed upper bound");
    assert!(best.implements(&f));
}

#[test]
fn generous_deadline_still_completes_and_proves() {
    // A deadline far beyond the solve time must not disturb the result:
    // same optimum, Complete status, optimality proven.
    let f = generators::xor_gate(2);
    let options = EncodeOptions::recommended();
    let synth = Synthesizer::new()
        .with_budget(Budget::new().with_deadline(Deadline::after(Duration::from_secs(600))));
    let report = parallel::minimize_mixed_mode(&synth, &f, 3, 3, false, &options, 2)
        .expect("well-budgeted run");
    assert_eq!(report.status, OptimizeStatus::Complete);
    assert!(report.proven_optimal);
    assert!(report.best.expect("XOR2 is realizable").implements(&f));
}

#[test]
fn conflict_budget_exhaustion_degrades_with_best_known() {
    // One conflict is not enough to settle the harder rungs: the report
    // must be tagged BudgetExhausted (when the unknowns matter) or stay
    // Complete — but never error, and never claim optimality falsely.
    let f = generators::gf22_multiplier();
    let options = EncodeOptions::recommended();
    let synth = Synthesizer::new().with_budget(Budget::new().with_max_conflicts(1));
    let report = parallel::minimize_mixed_mode(&synth, &f, 4, 3, false, &options, 2)
        .expect("budget exhaustion is degradation, not an error");
    if report.status.is_degraded() {
        assert!(!report.proven_optimal);
        assert!(matches!(
            report.status,
            OptimizeStatus::Degraded {
                reason: DegradeReason::BudgetExhausted
            }
        ));
        let best = report
            .best
            .expect("degraded runs return the seed upper bound");
        assert!(best.implements(&f));
    }
}
