//! Cross-crate integration tests: specification → SAT synthesis → circuit
//! IR → schedule → (electrical) line-array execution, checked at every
//! stage.

use memristive_mm::boolfn::{generators, MultiOutputFn};
use memristive_mm::circuit::Schedule;
use memristive_mm::device::{ElectricalParams, LineArray};
use memristive_mm::sat::Budget;
use memristive_mm::synth::{SynthSpec, Synthesizer};
use std::time::Duration;

fn synthesize(
    f: &MultiOutputFn,
    n_r: usize,
    n_l: usize,
    n_vs: usize,
) -> memristive_mm::circuit::MmCircuit {
    let spec = SynthSpec::mixed_mode(f, n_r, n_l, n_vs).expect("valid spec");
    let synth =
        Synthesizer::new().with_budget(Budget::new().with_max_time(Duration::from_secs(300)));
    let outcome = synth.run(&spec).expect("encode/solve never errors here");
    outcome
        .circuit()
        .expect("instance known satisfiable")
        .clone()
}

/// Runs a circuit end to end on ideal devices for every input and checks
/// it against the spec (this exercises scheduling and the device model, on
/// top of the synthesizer's own symbolic verification).
fn check_executes(f: &MultiOutputFn, circuit: &memristive_mm::circuit::MmCircuit) {
    let schedule = Schedule::compile(circuit).expect("decoded circuits are schedulable");
    assert!(
        schedule.verify(f),
        "{}: executed outputs differ from spec",
        f.name()
    );
}

#[test]
fn adder_full_pipeline() {
    let f = generators::ripple_adder(1);
    let circuit = synthesize(&f, 2, 3, 3);
    assert!(circuit.implements(&f));
    check_executes(&f, &circuit);
    let m = circuit.metrics();
    assert_eq!(m.n_steps, 5, "paper Table IV: N_St = 5");
    assert_eq!(m.n_devices_structural, 5, "paper Table IV: N_Dev = 5");
}

#[test]
fn xor_and_mux_pipelines() {
    for (f, n_r, n_l, n_vs) in [
        (generators::xor_gate(2), 1, 2, 2),
        (generators::mux21(), 1, 2, 2),
        (generators::xnor_gate(2), 1, 2, 2),
    ] {
        let circuit = synthesize(&f, n_r, n_l, n_vs);
        check_executes(&f, &circuit);
    }
}

#[test]
fn electrical_execution_matches_ideal_without_variation() {
    let f = generators::xor_gate(2);
    let circuit = synthesize(&f, 1, 2, 2);
    let schedule = Schedule::compile(&circuit).expect("schedulable");
    for x in 0..4u32 {
        let ideal = schedule.run_ideal(x);
        let mut array = LineArray::bfo(schedule.n_cells(), ElectricalParams::bfo(), x as u64);
        let electrical = schedule.execute(x, &mut array);
        assert_eq!(ideal, electrical, "x = {x:02b}");
        // Each cycle of the trace carries consistent per-cell vectors.
        for rec in array.trace().cycles() {
            assert_eq!(rec.states.len(), schedule.n_cells());
            assert_eq!(rec.resistances.len(), schedule.n_cells());
            assert_eq!(rec.te_voltages.len(), schedule.n_cells());
        }
    }
}

#[test]
fn multi_output_circuit_shares_legs() {
    // AND and NAND together: one leg's work can serve both via taps.
    let f = MultiOutputFn::new(
        "and_nand",
        vec![
            generators::and_gate(2)
                .output(0)
                .expect("one output")
                .clone(),
            generators::nand_gate(2)
                .output(0)
                .expect("one output")
                .clone(),
        ],
    )
    .expect("two outputs");
    let circuit = synthesize(&f, 1, 2, 2);
    assert!(circuit.implements(&f));
    check_executes(&f, &circuit);
}

#[test]
fn serde_round_trip_of_synthesized_circuit() {
    let f = generators::xor_gate(2);
    let circuit = synthesize(&f, 1, 2, 2);
    let json = serde_json::to_string(&circuit).expect("serializes");
    let back: memristive_mm::circuit::MmCircuit =
        serde_json::from_str(&json).expect("deserializes");
    assert_eq!(circuit, back);
    assert!(back.implements(&f));
}

#[test]
fn prelude_surface_compiles() {
    use memristive_mm::prelude::*;
    let f = generators::and_gate(2);
    let spec = SynthSpec::mixed_mode(&f, 0, 1, 2).expect("valid");
    let outcome = Synthesizer::new().run(&spec).expect("runs");
    let circuit: &MmCircuit = outcome.circuit().expect("realizable");
    let tt: TruthTable = circuit.eval_outputs().remove(0);
    assert_eq!(tt, f.outputs()[0]);
    let _ = (
        DeviceState::Lrs,
        Literal::Pos(1),
        Signal::Leg(0),
        ROpKind::MagicNor,
    );
    let _unused: (LiteralSet, Gf2m) = (LiteralSet::new(2), Gf2m::gf4().expect("field"));
    let _ = LineArray::ideal(1);
    let _ = ElectricalParams::bfo();
    let _ = CnfFormula::new();
    let _ = Budget::new();
    assert!(matches!(SatResult::Unsat, SatResult::Unsat));
    let _ = SynthOutcome::clone(&outcome);
    let _: SynthResult = outcome.result.clone();
}
