//! Cross-validation of two independent implementations of the same
//! question: the universality census (bit-mask closure) and the SAT
//! synthesizer (CNF + CDCL) must agree on which functions are V-op
//! realizable.

use memristive_mm::boolfn::{MultiOutputFn, TruthTable};
use memristive_mm::synth::optimize::{parallel, SynthResultKind};
use memristive_mm::synth::universality::{census_set, CensusConfig};
use memristive_mm::synth::{EncodeOptions, SynthSpec, Synthesizer};

/// Exhaustive for n = 2: all 16 functions, census vs SAT.
#[test]
fn census_and_sat_agree_on_all_2_input_functions() {
    let reachable = census_set(&CensusConfig::new(2));
    for bits in 0..16u64 {
        let tt = TruthTable::from_packed(2, bits).expect("2-input table");
        let f = MultiOutputFn::new(format!("f{bits:x}"), vec![tt]).expect("one output");
        // 4 V-op steps are enough to reach the fixed point for n = 2.
        let spec = SynthSpec::mixed_mode(&f, 0, 1, 4).expect("valid");
        let sat_realizable = Synthesizer::new()
            .run(&spec)
            .expect("runs")
            .circuit()
            .is_some();
        let census_realizable = reachable.contains(&(bits as u32));
        assert_eq!(
            sat_realizable, census_realizable,
            "disagreement on function {bits:04b}"
        );
    }
    // Sanity: V-ops reach every 2-input function except XOR and XNOR.
    assert_eq!(reachable.len(), 14);
    assert!(!reachable.contains(&0b0110), "XOR2 must be unreachable");
    assert!(!reachable.contains(&0b1001), "XNOR2 must be unreachable");
}

/// The canonical (smallest) NPN representative of a 2-input function:
/// minimum over all input permutations, input negations, and output
/// negation.
fn npn_canonical_2(bits: u32) -> u32 {
    let row = |b: u32, x1: u32, x2: u32| (b >> (x1 | (x2 << 1))) & 1;
    let mut best = u32::MAX;
    for swap in [false, true] {
        for neg1 in [0u32, 1] {
            for neg2 in [0u32, 1] {
                for negout in [0u32, 1] {
                    let mut t = 0u32;
                    for x1 in 0..2u32 {
                        for x2 in 0..2u32 {
                            let (a, b) = if swap { (x2, x1) } else { (x1, x2) };
                            let v = row(bits, a ^ neg1, b ^ neg2) ^ negout;
                            t |= v << (x1 | (x2 << 1));
                        }
                    }
                    best = best.min(t);
                }
            }
        }
    }
    best
}

/// The jobs values the certified ladder is exercised under; the CI certify
/// matrix adds its own via `MMSYNTH_TEST_JOBS`.
fn job_counts() -> Vec<usize> {
    let mut jobs = vec![1, 4];
    if let Some(extra) = std::env::var("MMSYNTH_TEST_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        jobs.push(extra.max(1));
    }
    jobs.sort_unstable();
    jobs.dedup();
    jobs
}

/// Certified-UNSAT ladder vs. brute-force census, over every 2-input NPN
/// class, under multiple thread counts.
///
/// NPN classification only shrinks the workload, not the claim: V-op
/// reachability is *not* NPN-invariant (the census set is not closed under
/// input/output negation), so every class member is still compared against
/// the census individually — the class structure just picks which ladders
/// to run certified.
#[test]
fn certified_ladder_agrees_with_census_on_all_npn_classes() {
    let reachable = census_set(&CensusConfig::new(2));
    let opts = EncodeOptions::recommended();
    let synth = Synthesizer::new().with_certification(true);

    // n = 2 has exactly 4 NPN classes: const, projection, AND, XOR.
    let mut representatives: Vec<u32> = (0..16u32).map(npn_canonical_2).collect();
    representatives.sort_unstable();
    representatives.dedup();
    assert_eq!(representatives.len(), 4, "2-input NPN classes");

    for &bits in &representatives {
        let tt = TruthTable::from_packed(2, u64::from(bits)).expect("2-input table");
        let f = MultiOutputFn::new(format!("npn{bits:x}"), vec![tt]).expect("one output");
        let census_realizable = reachable.contains(&bits);
        for jobs in job_counts() {
            let report = parallel::minimize_vsteps(&synth, &f, 0, 1, 4, &opts, jobs)
                .expect("certified ladder runs");
            assert_eq!(
                report.best.is_some(),
                census_realizable,
                "ladder vs census on NPN class {bits:04b}, jobs={jobs}"
            );
            for call in &report.calls {
                match call.result {
                    SynthResultKind::Unrealizable => {
                        assert!(
                            call.certified,
                            "uncertified UNSAT rung N_VS={} on {bits:04b}, jobs={jobs}",
                            call.n_vsteps
                        );
                        let proof = call.proof.as_ref().expect("certified rung keeps proof");
                        assert!(proof.is_concluded());
                    }
                    _ => assert!(call.proof.is_none()),
                }
            }
            // 4 steps reach the V-op fixed point for n = 2, so realizable
            // classes are always proven minimal; and an unrealizable class
            // has no circuit to claim optimal.
            if census_realizable {
                assert!(report.proven_optimal, "class {bits:04b}, jobs={jobs}");
            }
        }
    }
}

/// Spot checks for n = 3 (exhaustive would be 256 SAT calls; sample the
/// interesting boundary).
#[test]
fn census_and_sat_agree_on_3_input_samples() {
    let reachable = census_set(&CensusConfig::new(3));
    for bits in [
        0x00u64, 0xff, 0x96, /* xor3 */
        0x17, /* maj3' */
        0x80, 0x7f, 0x01, 0xe8,
    ] {
        let tt = TruthTable::from_packed(3, bits).expect("3-input table");
        let f = MultiOutputFn::new(format!("f{bits:02x}"), vec![tt]).expect("one output");
        let spec = SynthSpec::mixed_mode(&f, 0, 1, 5).expect("valid");
        let sat_realizable = Synthesizer::new()
            .run(&spec)
            .expect("runs")
            .circuit()
            .is_some();
        assert_eq!(
            sat_realizable,
            reachable.contains(&(bits as u32)),
            "disagreement on function {bits:08b}"
        );
    }
}
