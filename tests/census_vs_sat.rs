//! Cross-validation of two independent implementations of the same
//! question: the universality census (bit-mask closure) and the SAT
//! synthesizer (CNF + CDCL) must agree on which functions are V-op
//! realizable.

use memristive_mm::boolfn::{MultiOutputFn, TruthTable};
use memristive_mm::synth::universality::{census_set, CensusConfig};
use memristive_mm::synth::{SynthSpec, Synthesizer};

/// Exhaustive for n = 2: all 16 functions, census vs SAT.
#[test]
fn census_and_sat_agree_on_all_2_input_functions() {
    let reachable = census_set(&CensusConfig::new(2));
    for bits in 0..16u64 {
        let tt = TruthTable::from_packed(2, bits).expect("2-input table");
        let f = MultiOutputFn::new(format!("f{bits:x}"), vec![tt]).expect("one output");
        // 4 V-op steps are enough to reach the fixed point for n = 2.
        let spec = SynthSpec::mixed_mode(&f, 0, 1, 4).expect("valid");
        let sat_realizable = Synthesizer::new()
            .run(&spec)
            .expect("runs")
            .circuit()
            .is_some();
        let census_realizable = reachable.contains(&(bits as u32));
        assert_eq!(
            sat_realizable, census_realizable,
            "disagreement on function {bits:04b}"
        );
    }
    // Sanity: V-ops reach every 2-input function except XOR and XNOR.
    assert_eq!(reachable.len(), 14);
    assert!(!reachable.contains(&0b0110), "XOR2 must be unreachable");
    assert!(!reachable.contains(&0b1001), "XNOR2 must be unreachable");
}

/// Spot checks for n = 3 (exhaustive would be 256 SAT calls; sample the
/// interesting boundary).
#[test]
fn census_and_sat_agree_on_3_input_samples() {
    let reachable = census_set(&CensusConfig::new(3));
    for bits in [
        0x00u64, 0xff, 0x96, /* xor3 */
        0x17, /* maj3' */
        0x80, 0x7f, 0x01, 0xe8,
    ] {
        let tt = TruthTable::from_packed(3, bits).expect("3-input table");
        let f = MultiOutputFn::new(format!("f{bits:02x}"), vec![tt]).expect("one output");
        let spec = SynthSpec::mixed_mode(&f, 0, 1, 5).expect("valid");
        let sat_realizable = Synthesizer::new()
            .run(&spec)
            .expect("runs")
            .circuit()
            .is_some();
        assert_eq!(
            sat_realizable,
            reachable.contains(&(bits as u32)),
            "disagreement on function {bits:08b}"
        );
    }
}
