//! End-to-end tests for `mmsynthd`: mixed batches over stdio, kill -9
//! torture against the persistent cache, and the service's core safety
//! claim — a cache hit is bit-identical to a cold solve at any `--jobs`.
//!
//! Everything runs the real binary (`CARGO_BIN_EXE_mmsynthd`) against a
//! throwaway cache directory, exactly as CI's daemon smoke leg does.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

use memristive_mm::boolfn::{MultiOutputFn, TruthTable};
use memristive_mm::circuit::MmCircuit;
use serde::{Deserialize, Value};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("svc_e2e_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spawn_daemon(cache: &Path, extra: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_mmsynthd"))
        .arg("--cache-dir")
        .arg(cache)
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("mmsynthd spawns")
}

/// Runs one daemon lifetime: writes `lines`, closes stdin (EOF drains),
/// and returns (parsed responses, stderr).
fn run_batch(cache: &Path, extra: &[&str], lines: &[String]) -> (Vec<Value>, String) {
    let mut child = spawn_daemon(cache, extra);
    let mut stdin = child.stdin.take().expect("piped stdin");
    for line in lines {
        writeln!(stdin, "{line}").expect("write request");
    }
    drop(stdin);
    let output = child.wait_with_output().expect("daemon exits");
    let stderr = String::from_utf8_lossy(&output.stderr).into_owned();
    assert!(
        output.status.success(),
        "daemon failed: {stderr}\nstdout: {}",
        String::from_utf8_lossy(&output.stdout)
    );
    let responses = String::from_utf8_lossy(&output.stdout)
        .lines()
        .map(|l| serde_json::from_str(l).unwrap_or_else(|e| panic!("bad response {l:?}: {e}")))
        .collect();
    (responses, stderr)
}

/// Raw-line variant of [`run_batch`] for tests about frame interleaving:
/// progress frames are not responses, so callers split them themselves.
fn run_batch_raw(cache: &Path, extra: &[&str], lines: &[String]) -> (Vec<String>, String) {
    let mut child = spawn_daemon(cache, extra);
    let mut stdin = child.stdin.take().expect("piped stdin");
    for line in lines {
        writeln!(stdin, "{line}").expect("write request");
    }
    drop(stdin);
    let output = child.wait_with_output().expect("daemon exits");
    let stderr = String::from_utf8_lossy(&output.stderr).into_owned();
    assert!(output.status.success(), "daemon failed: {stderr}");
    let raw = String::from_utf8_lossy(&output.stdout)
        .lines()
        .map(str::to_string)
        .collect();
    (raw, stderr)
}

fn is_progress_frame(line: &str) -> bool {
    matches!(
        serde_json::from_str::<Value>(line)
            .unwrap_or_else(|e| panic!("bad line {line:?}: {e}"))
            .get("frame"),
        Some(Value::Str(f)) if f == "progress"
    )
}

fn field<'a>(resp: &'a Value, key: &str) -> Option<&'a Value> {
    resp.get(key).filter(|v| !matches!(v, Value::Null))
}

fn str_field<'a>(resp: &'a Value, key: &str) -> Option<&'a str> {
    match field(resp, key) {
        Some(Value::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn minimize_line(id: &str, tables: &str, extra: &str) -> String {
    format!(
        r#"{{"op":"minimize","id":"{id}","tables":["{tables}"],"max_rops":3,"max_steps":3{extra}}}"#
    )
}

fn function(tables: &str) -> MultiOutputFn {
    MultiOutputFn::new(
        "spec",
        vec![TruthTable::from_bitstring(tables).expect("table")],
    )
    .expect("function")
}

/// Parses the circuit out of a response and checks it implements the
/// *requested* function — the "never a wrong verdict" assertion.
fn assert_circuit_implements(resp: &Value, tables: &str, context: &str) {
    let circuit_value = field(resp, "circuit")
        .unwrap_or_else(|| panic!("{context}: response has no circuit: {resp:?}"));
    let circuit = MmCircuit::from_value(circuit_value)
        .unwrap_or_else(|e| panic!("{context}: circuit does not parse: {e}"));
    assert!(
        circuit.implements(&function(tables)),
        "{context}: served circuit does not implement {tables}"
    );
}

#[test]
fn mixed_batch_over_stdio() {
    let cache = temp_dir("mixed");
    let lines = vec![
        r#"{"op":"ping","id":"p"}"#.to_string(),
        minimize_line("cold", "0110", ""),
        // XNOR canonicalizes onto XOR's representative: NPN hit.
        minimize_line("npn", "1001", ""),
        // A microscopic deadline: degraded, and (being timing-dependent)
        // never served from or stored into the cache.
        minimize_line("late", "0111", r#","deadline_secs":0.000001"#),
        r#"{"op":"stats","id":"s"}"#.to_string(),
    ];
    // --workers 1 serializes the jobs so cold/npn ordering is deterministic.
    let (responses, _) = run_batch(&cache, &["--workers", "1"], &lines);
    assert_eq!(responses.len(), 5, "one response line per request");
    let by_id: Vec<(&str, &Value)> = responses
        .iter()
        .map(|r| (str_field(r, "id").expect("id"), r))
        .collect();
    assert_eq!(
        by_id.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
        vec!["p", "cold", "npn", "late", "s"],
        "responses come back in submission order"
    );
    assert_eq!(str_field(by_id[0].1, "status"), Some("ok"));
    assert_eq!(str_field(by_id[1].1, "status"), Some("ok"));
    assert_eq!(str_field(by_id[1].1, "cache"), Some("miss"));
    assert_circuit_implements(by_id[1].1, "0110", "cold solve");
    assert_eq!(str_field(by_id[2].1, "status"), Some("ok"));
    assert_eq!(
        str_field(by_id[2].1, "cache"),
        Some("hit"),
        "xnor must hit xor's canonical entry: {:?}",
        by_id[2].1
    );
    assert_circuit_implements(by_id[2].1, "1001", "NPN hit");
    assert_eq!(
        str_field(by_id[3].1, "status"),
        Some("degraded"),
        "deadline-expired job must degrade, not lie: {:?}",
        by_id[3].1
    );
    assert!(str_field(by_id[3].1, "degraded_reason").is_some());
    // Stats are answered inline at read time (pipelined requests may not
    // have executed yet), so assert the counter shape, not the counts.
    let stats = field(by_id[4].1, "cache_stats").expect("stats response carries counters");
    for counter in ["hits", "misses", "stores", "quarantined"] {
        assert!(
            matches!(stats.get(counter), Some(Value::UInt(_))),
            "missing counter {counter}: {stats:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&cache);
}

/// The bit-identity claim: for the same deterministic request, a cache
/// hit equals a cold solve — same circuit, same proof, same verdict —
/// and both are invariant across portfolio widths 1/2/8.
#[test]
fn hits_are_bit_identical_to_cold_solves_across_jobs() {
    let request = minimize_line("j", "0110", r#","certify":true"#);
    let mut witnesses: Vec<(String, Value, Value, Value)> = Vec::new();
    for jobs in ["1", "2", "8"] {
        let cache = temp_dir(&format!("identity_{jobs}"));
        let (cold, _) = run_batch(&cache, &["--jobs", jobs], std::slice::from_ref(&request));
        let (warm, _) = run_batch(&cache, &["--jobs", jobs], std::slice::from_ref(&request));
        for (kind, resp) in [("cold", &cold[0]), ("warm", &warm[0])] {
            assert_eq!(
                str_field(resp, "status"),
                Some("ok"),
                "{kind}@{jobs}: {resp:?}"
            );
            let expected = if kind == "cold" { "miss" } else { "hit" };
            assert_eq!(str_field(resp, "cache"), Some(expected), "{kind}@{jobs}");
            witnesses.push((
                format!("{kind}@{jobs}"),
                field(resp, "circuit").expect("circuit").clone(),
                field(resp, "proven_optimal").expect("verdict").clone(),
                field(resp, "proof")
                    .expect("certified run carries a proof")
                    .clone(),
            ));
        }
        let _ = std::fs::remove_dir_all(&cache);
    }
    let (_, circuit0, optimal0, proof0) = &witnesses[0];
    for (who, circuit, optimal, proof) in &witnesses[1..] {
        assert_eq!(circuit, circuit0, "circuit differs for {who}");
        assert_eq!(optimal, optimal0, "verdict differs for {who}");
        assert_eq!(proof, proof0, "proof differs for {who}");
    }
}

/// Kill -9 torture: repeatedly murder the daemon mid-burst, restart on
/// the same cache directory, and require that recovery never serves a
/// wrong answer and converges to cache hits bit-identical to a cold
/// solve from an untouched cache.
#[test]
fn sigkill_torture_never_serves_a_wrong_answer() {
    let burst = ["0001", "0110", "1000", "0111"];
    // Reference: cold solves from a pristine cache.
    let pristine = temp_dir("pristine");
    let lines: Vec<String> = burst
        .iter()
        .enumerate()
        .map(|(i, t)| minimize_line(&format!("ref{i}"), t, ""))
        .collect();
    let (reference, _) = run_batch(&pristine, &[], &lines);
    let _ = std::fs::remove_dir_all(&pristine);

    let cache = temp_dir("torture");
    for round in 0..3u64 {
        let mut child = spawn_daemon(&cache, &[]);
        let mut stdin = child.stdin.take().expect("piped stdin");
        for (i, t) in burst.iter().enumerate() {
            let _ = writeln!(stdin, "{}", minimize_line(&format!("r{round}j{i}"), t, ""));
        }
        let _ = stdin.flush();
        // Vary the murder instant so different rounds die in different
        // phases (parsing, solving, storing).
        std::thread::sleep(std::time::Duration::from_millis(20 + 60 * round));
        child.kill().expect("SIGKILL");
        let _ = child.wait();

        // Restart on the same directory: recovery must scan, then the
        // resubmitted burst must serve only correct circuits.
        let (responses, stderr) = run_batch(&cache, &[], &lines);
        assert!(
            stderr.contains("mmsynthd: cache"),
            "restart must report the recovery scan: {stderr}"
        );
        assert_eq!(responses.len(), burst.len());
        for (resp, tables) in responses.iter().zip(burst) {
            assert_eq!(
                str_field(resp, "status"),
                Some("ok"),
                "round {round}: {resp:?}"
            );
            assert_circuit_implements(resp, tables, &format!("round {round}"));
        }
    }
    // After the dust settles everything is cached, and each answer is
    // bit-identical to the pristine cold solve.
    let (settled, _) = run_batch(&cache, &[], &lines);
    for ((resp, reference), tables) in settled.iter().zip(&reference).zip(burst) {
        assert_eq!(str_field(resp, "cache"), Some("hit"), "{tables}: {resp:?}");
        assert_eq!(
            field(resp, "circuit"),
            field(reference, "circuit"),
            "{tables}: crash-recovered cache serves a different circuit than a cold solve"
        );
        assert_eq!(
            field(resp, "proven_optimal"),
            field(reference, "proven_optimal"),
            "{tables}: verdict drifted"
        );
    }
    let _ = std::fs::remove_dir_all(&cache);
}

/// Streaming contract: a subscribed minimize on a multi-rung ladder
/// yields exactly one `rung` frame per ladder index, every frame
/// precedes the job's final, and the *set* of rung indices is invariant
/// across portfolio widths 1/2/8 (mirroring `parallel_determinism`).
#[test]
fn progress_frames_cover_every_rung_and_are_jobs_invariant() {
    let request = minimize_line("sub", "0110", r#","subscribe":true"#);
    let mut rung_idx_sets: Vec<(String, Vec<(u64, u64, u64)>)> = Vec::new();
    for jobs in ["1", "2", "8"] {
        let cache = temp_dir(&format!("frames_{jobs}"));
        let (lines, _) = run_batch_raw(&cache, &["--jobs", jobs], std::slice::from_ref(&request));
        let (frames, finals): (Vec<&String>, Vec<&String>) =
            lines.iter().partition(|l| is_progress_frame(l));
        assert_eq!(
            finals.len(),
            1,
            "jobs={jobs}: exactly one final: {lines:#?}"
        );
        assert_eq!(
            lines.last().map(String::as_str),
            finals.first().map(|s| s.as_str()),
            "jobs={jobs}: every frame precedes the final"
        );
        // A minimize descends several ladders in sequence; each ladder
        // emits one `rung` frame per spec index, so the *multiset* of
        // (n_rops, n_vsteps, idx) triples is the deterministic shape.
        let mut rungs: Vec<(u64, u64, u64)> = frames
            .iter()
            .map(|l| serde_json::from_str::<Value>(l).expect("frame parses"))
            .filter(|v| matches!(v.get("event"), Some(Value::Str(e)) if e == "rung"))
            .map(|v| {
                let num = |key: &str| match v.get(key) {
                    Some(Value::UInt(n)) => *n,
                    other => panic!("jobs={jobs}: rung frame without {key}: {other:?}"),
                };
                (num("n_rops"), num("n_vsteps"), num("idx"))
            })
            .collect();
        rungs.sort_unstable();
        assert!(!rungs.is_empty(), "jobs={jobs}: ladder emits rung frames");
        rung_idx_sets.push((format!("jobs={jobs}"), rungs));
        let _ = std::fs::remove_dir_all(&cache);
    }
    let (_, reference) = &rung_idx_sets[0];
    for (who, rungs) in &rung_idx_sets[1..] {
        assert_eq!(rungs, reference, "{who}: rung frame set differs");
    }
}

/// Non-subscribers are untouched by the streaming layer: in a mixed
/// pipelined batch only the subscribed job's frames appear, and the
/// non-subscribed final is byte-identical to a run with no subscriber
/// anywhere.
#[test]
fn non_subscribers_get_no_frames_and_identical_bytes() {
    // --jobs 1 pins `solver_calls`, which is timing-dependent under a
    // portfolio, so finals compare bytewise.
    let quiet_request = minimize_line("q", "0111", "");
    let cache_mixed = temp_dir("mixed_sub");
    let mixed = vec![
        minimize_line("loud", "0110", r#","subscribe":true"#),
        quiet_request.clone(),
    ];
    let (lines, _) = run_batch_raw(&cache_mixed, &["--workers", "1", "--jobs", "1"], &mixed);
    let frames: Vec<&String> = lines.iter().filter(|l| is_progress_frame(l)).collect();
    assert!(!frames.is_empty(), "subscribed job streams: {lines:#?}");
    for frame in &frames {
        assert!(
            frame.contains(r#""id":"loud""#),
            "frame from a non-subscriber: {frame}"
        );
    }
    let mixed_quiet_final = lines
        .iter()
        .find(|l| !is_progress_frame(l) && l.contains(r#""id":"q""#))
        .expect("non-subscribed final")
        .clone();
    let _ = std::fs::remove_dir_all(&cache_mixed);

    let cache_ref = temp_dir("no_sub");
    let (reference, _) = run_batch_raw(
        &cache_ref,
        &["--workers", "1", "--jobs", "1"],
        std::slice::from_ref(&quiet_request),
    );
    assert_eq!(reference.len(), 1);
    assert_eq!(
        mixed_quiet_final, reference[0],
        "a subscriber elsewhere in the batch must not change these bytes"
    );
    let _ = std::fs::remove_dir_all(&cache_ref);
}

/// The HTTP exporter end to end: `--metrics-addr 127.0.0.1:0` binds,
/// announces its port on stderr, and serves the queue/cache/solver
/// families; after a job runs, the per-op job families appear too.
#[test]
fn metrics_endpoint_serves_all_families_over_http() {
    use std::io::{BufRead, BufReader, Read};

    let cache = temp_dir("http_metrics");
    let mut child = spawn_daemon(&cache, &["--metrics-addr", "127.0.0.1:0", "--jobs", "1"]);
    let mut stderr = BufReader::new(child.stderr.take().expect("piped stderr"));
    let addr = loop {
        let mut line = String::new();
        assert_ne!(
            stderr.read_line(&mut line).expect("stderr readable"),
            0,
            "daemon exited before announcing the metrics address"
        );
        if let Some(rest) = line.trim().strip_prefix("mmsynthd: metrics on http://") {
            break rest
                .strip_suffix("/metrics")
                .expect("announcement format")
                .to_string();
        }
    };
    let get_metrics = || {
        let mut stream = std::net::TcpStream::connect(&addr).expect("connect to exporter");
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        response
    };

    let first = get_metrics();
    assert!(first.starts_with("HTTP/1.1 200 OK"), "{first}");
    for family in [
        "mmsynth_queue_depth",
        "mmsynth_jobs_inflight",
        "mmsynth_admissions_total",
        "mmsynth_sheds_total",
        "mmsynth_cache_hits_total",
        "mmsynth_cache_misses_total",
        "mmsynth_cache_entries",
        "mmsynth_solver_conflicts_total",
        "mmsynth_ladder_clauses_exported_total",
    ] {
        assert!(first.contains(family), "missing {family} in:\n{first}");
    }

    let mut stdin = child.stdin.take().expect("piped stdin");
    writeln!(stdin, "{}", minimize_line("m", "0110", "")).expect("write request");
    stdin.flush().expect("flush");
    // The final on stdout means the job (and its metric updates) is done.
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut final_line = String::new();
    stdout.read_line(&mut final_line).expect("final");
    assert!(final_line.contains(r#""status":"ok""#), "{final_line}");

    let second = get_metrics();
    for family in [
        r#"mmsynth_jobs_total{op="minimize",status="ok"} 1"#,
        r#"mmsynth_job_duration_us_count{op="minimize"} 1"#,
        "mmsynth_rungs_total",
        "mmsynth_admissions_total 1",
        "mmsynth_cache_misses_total 1",
        "mmsynth_cache_stores_total 1",
    ] {
        assert!(second.contains(family), "missing {family} in:\n{second}");
    }

    drop(stdin); // EOF drains
    let status = child.wait().expect("daemon exits");
    assert!(status.success());
    let _ = std::fs::remove_dir_all(&cache);
}

/// The one-shot client against a socket daemon: `degraded` maps to exit
/// code 2, `--progress` renders frames on stderr while stdout stays one
/// clean JSON line, and `--op metrics` exposes the registry.
#[test]
fn client_exit_codes_and_progress_over_unix_socket() {
    let cache = temp_dir("client");
    let socket = std::env::temp_dir().join(format!("svc_e2e_client_{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);
    let mut child = spawn_daemon(&cache, &["--socket", socket.to_str().expect("utf8 path")]);
    // The daemon accepts only after the socket file exists.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !socket.exists() {
        assert!(
            std::time::Instant::now() < deadline,
            "daemon never bound {socket:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let client = |extra: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_mmsynth"))
            .arg("client")
            .arg("--socket")
            .arg(&socket)
            .args(extra)
            .output()
            .expect("client runs")
    };

    // A microscopic deadline degrades; the client must exit 2, not 0.
    let degraded = client(&["--function", "0111", "--deadline", "0.000001"]);
    assert_eq!(
        degraded.status.code(),
        Some(2),
        "degraded must map to exit 2\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&degraded.stdout),
        String::from_utf8_lossy(&degraded.stderr)
    );
    assert!(String::from_utf8_lossy(&degraded.stdout).contains(r#""status":"degraded""#));

    // --progress: frames on stderr, exactly the final on stdout, exit 0.
    let streamed = client(&["--function", "0110", "--progress"]);
    assert_eq!(streamed.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&streamed.stdout);
    assert_eq!(stdout.lines().count(), 1, "stdout: {stdout}");
    assert!(stdout.contains(r#""status":"ok""#));
    assert!(
        String::from_utf8_lossy(&streamed.stderr).contains("mmsynth: progress rung"),
        "stderr: {}",
        String::from_utf8_lossy(&streamed.stderr)
    );

    // The metrics op over the wire reflects the jobs just served.
    let metrics = client(&["--op", "metrics"]);
    assert_eq!(metrics.status.code(), Some(0));
    let snapshot = String::from_utf8_lossy(&metrics.stdout);
    assert!(snapshot.contains(r#""metrics_text":"#), "{snapshot}");
    assert!(snapshot.contains("mmsynth_jobs_total"), "{snapshot}");

    let shutdown = client(&["--op", "shutdown"]);
    assert_eq!(shutdown.status.code(), Some(0));
    let status = child.wait().expect("daemon exits");
    assert!(status.success());
    let _ = std::fs::remove_file(&socket);
    let _ = std::fs::remove_dir_all(&cache);
}

/// Overload shedding is reachable and explicit: a tiny queue + pipelined
/// burst must produce at least one `overloaded` response, and every
/// accepted job still resolves correctly.
#[test]
fn overload_sheds_explicitly_instead_of_buffering() {
    let cache = temp_dir("overload");
    // Admission happens before cache lookup, so even identical requests
    // exert queue pressure; a 12-deep pipelined burst against a depth-1
    // queue must trip the shed path.
    let lines: Vec<String> = (0..12)
        .map(|i| minimize_line(&format!("b{i}"), "0110", ""))
        .collect();
    let (responses, _) = run_batch(&cache, &["--workers", "1", "--queue-depth", "1"], &lines);
    assert_eq!(responses.len(), lines.len(), "every request gets a line");
    let overloaded = responses
        .iter()
        .filter(|r| str_field(r, "status") == Some("overloaded"))
        .count();
    let ok = responses
        .iter()
        .filter(|r| str_field(r, "status") == Some("ok"))
        .count();
    assert!(ok >= 1, "at least the first job must be served");
    assert!(
        overloaded >= 1,
        "a 12-deep pipelined burst against queue-depth 1 must shed; statuses: {:?}",
        responses
            .iter()
            .map(|r| str_field(r, "status").unwrap_or("?").to_string())
            .collect::<Vec<_>>()
    );
    for resp in responses
        .iter()
        .filter(|r| str_field(r, "status") == Some("ok"))
    {
        assert_circuit_implements(resp, "0110", "served under overload");
    }
    let _ = std::fs::remove_dir_all(&cache);
}
