//! End-to-end tests for `mmsynthd`: mixed batches over stdio, kill -9
//! torture against the persistent cache, and the service's core safety
//! claim — a cache hit is bit-identical to a cold solve at any `--jobs`.
//!
//! Everything runs the real binary (`CARGO_BIN_EXE_mmsynthd`) against a
//! throwaway cache directory, exactly as CI's daemon smoke leg does.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

use memristive_mm::boolfn::{MultiOutputFn, TruthTable};
use memristive_mm::circuit::MmCircuit;
use serde::{Deserialize, Value};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("svc_e2e_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spawn_daemon(cache: &Path, extra: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_mmsynthd"))
        .arg("--cache-dir")
        .arg(cache)
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("mmsynthd spawns")
}

/// Runs one daemon lifetime: writes `lines`, closes stdin (EOF drains),
/// and returns (parsed responses, stderr).
fn run_batch(cache: &Path, extra: &[&str], lines: &[String]) -> (Vec<Value>, String) {
    let mut child = spawn_daemon(cache, extra);
    let mut stdin = child.stdin.take().expect("piped stdin");
    for line in lines {
        writeln!(stdin, "{line}").expect("write request");
    }
    drop(stdin);
    let output = child.wait_with_output().expect("daemon exits");
    let stderr = String::from_utf8_lossy(&output.stderr).into_owned();
    assert!(
        output.status.success(),
        "daemon failed: {stderr}\nstdout: {}",
        String::from_utf8_lossy(&output.stdout)
    );
    let responses = String::from_utf8_lossy(&output.stdout)
        .lines()
        .map(|l| serde_json::from_str(l).unwrap_or_else(|e| panic!("bad response {l:?}: {e}")))
        .collect();
    (responses, stderr)
}

fn field<'a>(resp: &'a Value, key: &str) -> Option<&'a Value> {
    resp.get(key).filter(|v| !matches!(v, Value::Null))
}

fn str_field<'a>(resp: &'a Value, key: &str) -> Option<&'a str> {
    match field(resp, key) {
        Some(Value::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn minimize_line(id: &str, tables: &str, extra: &str) -> String {
    format!(
        r#"{{"op":"minimize","id":"{id}","tables":["{tables}"],"max_rops":3,"max_steps":3{extra}}}"#
    )
}

fn function(tables: &str) -> MultiOutputFn {
    MultiOutputFn::new(
        "spec",
        vec![TruthTable::from_bitstring(tables).expect("table")],
    )
    .expect("function")
}

/// Parses the circuit out of a response and checks it implements the
/// *requested* function — the "never a wrong verdict" assertion.
fn assert_circuit_implements(resp: &Value, tables: &str, context: &str) {
    let circuit_value = field(resp, "circuit")
        .unwrap_or_else(|| panic!("{context}: response has no circuit: {resp:?}"));
    let circuit = MmCircuit::from_value(circuit_value)
        .unwrap_or_else(|e| panic!("{context}: circuit does not parse: {e}"));
    assert!(
        circuit.implements(&function(tables)),
        "{context}: served circuit does not implement {tables}"
    );
}

#[test]
fn mixed_batch_over_stdio() {
    let cache = temp_dir("mixed");
    let lines = vec![
        r#"{"op":"ping","id":"p"}"#.to_string(),
        minimize_line("cold", "0110", ""),
        // XNOR canonicalizes onto XOR's representative: NPN hit.
        minimize_line("npn", "1001", ""),
        // A microscopic deadline: degraded, and (being timing-dependent)
        // never served from or stored into the cache.
        minimize_line("late", "0111", r#","deadline_secs":0.000001"#),
        r#"{"op":"stats","id":"s"}"#.to_string(),
    ];
    // --workers 1 serializes the jobs so cold/npn ordering is deterministic.
    let (responses, _) = run_batch(&cache, &["--workers", "1"], &lines);
    assert_eq!(responses.len(), 5, "one response line per request");
    let by_id: Vec<(&str, &Value)> = responses
        .iter()
        .map(|r| (str_field(r, "id").expect("id"), r))
        .collect();
    assert_eq!(
        by_id.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
        vec!["p", "cold", "npn", "late", "s"],
        "responses come back in submission order"
    );
    assert_eq!(str_field(by_id[0].1, "status"), Some("ok"));
    assert_eq!(str_field(by_id[1].1, "status"), Some("ok"));
    assert_eq!(str_field(by_id[1].1, "cache"), Some("miss"));
    assert_circuit_implements(by_id[1].1, "0110", "cold solve");
    assert_eq!(str_field(by_id[2].1, "status"), Some("ok"));
    assert_eq!(
        str_field(by_id[2].1, "cache"),
        Some("hit"),
        "xnor must hit xor's canonical entry: {:?}",
        by_id[2].1
    );
    assert_circuit_implements(by_id[2].1, "1001", "NPN hit");
    assert_eq!(
        str_field(by_id[3].1, "status"),
        Some("degraded"),
        "deadline-expired job must degrade, not lie: {:?}",
        by_id[3].1
    );
    assert!(str_field(by_id[3].1, "degraded_reason").is_some());
    // Stats are answered inline at read time (pipelined requests may not
    // have executed yet), so assert the counter shape, not the counts.
    let stats = field(by_id[4].1, "cache_stats").expect("stats response carries counters");
    for counter in ["hits", "misses", "stores", "quarantined"] {
        assert!(
            matches!(stats.get(counter), Some(Value::UInt(_))),
            "missing counter {counter}: {stats:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&cache);
}

/// The bit-identity claim: for the same deterministic request, a cache
/// hit equals a cold solve — same circuit, same proof, same verdict —
/// and both are invariant across portfolio widths 1/2/8.
#[test]
fn hits_are_bit_identical_to_cold_solves_across_jobs() {
    let request = minimize_line("j", "0110", r#","certify":true"#);
    let mut witnesses: Vec<(String, Value, Value, Value)> = Vec::new();
    for jobs in ["1", "2", "8"] {
        let cache = temp_dir(&format!("identity_{jobs}"));
        let (cold, _) = run_batch(&cache, &["--jobs", jobs], std::slice::from_ref(&request));
        let (warm, _) = run_batch(&cache, &["--jobs", jobs], std::slice::from_ref(&request));
        for (kind, resp) in [("cold", &cold[0]), ("warm", &warm[0])] {
            assert_eq!(
                str_field(resp, "status"),
                Some("ok"),
                "{kind}@{jobs}: {resp:?}"
            );
            let expected = if kind == "cold" { "miss" } else { "hit" };
            assert_eq!(str_field(resp, "cache"), Some(expected), "{kind}@{jobs}");
            witnesses.push((
                format!("{kind}@{jobs}"),
                field(resp, "circuit").expect("circuit").clone(),
                field(resp, "proven_optimal").expect("verdict").clone(),
                field(resp, "proof")
                    .expect("certified run carries a proof")
                    .clone(),
            ));
        }
        let _ = std::fs::remove_dir_all(&cache);
    }
    let (_, circuit0, optimal0, proof0) = &witnesses[0];
    for (who, circuit, optimal, proof) in &witnesses[1..] {
        assert_eq!(circuit, circuit0, "circuit differs for {who}");
        assert_eq!(optimal, optimal0, "verdict differs for {who}");
        assert_eq!(proof, proof0, "proof differs for {who}");
    }
}

/// Kill -9 torture: repeatedly murder the daemon mid-burst, restart on
/// the same cache directory, and require that recovery never serves a
/// wrong answer and converges to cache hits bit-identical to a cold
/// solve from an untouched cache.
#[test]
fn sigkill_torture_never_serves_a_wrong_answer() {
    let burst = ["0001", "0110", "1000", "0111"];
    // Reference: cold solves from a pristine cache.
    let pristine = temp_dir("pristine");
    let lines: Vec<String> = burst
        .iter()
        .enumerate()
        .map(|(i, t)| minimize_line(&format!("ref{i}"), t, ""))
        .collect();
    let (reference, _) = run_batch(&pristine, &[], &lines);
    let _ = std::fs::remove_dir_all(&pristine);

    let cache = temp_dir("torture");
    for round in 0..3u64 {
        let mut child = spawn_daemon(&cache, &[]);
        let mut stdin = child.stdin.take().expect("piped stdin");
        for (i, t) in burst.iter().enumerate() {
            let _ = writeln!(stdin, "{}", minimize_line(&format!("r{round}j{i}"), t, ""));
        }
        let _ = stdin.flush();
        // Vary the murder instant so different rounds die in different
        // phases (parsing, solving, storing).
        std::thread::sleep(std::time::Duration::from_millis(20 + 60 * round));
        child.kill().expect("SIGKILL");
        let _ = child.wait();

        // Restart on the same directory: recovery must scan, then the
        // resubmitted burst must serve only correct circuits.
        let (responses, stderr) = run_batch(&cache, &[], &lines);
        assert!(
            stderr.contains("mmsynthd: cache"),
            "restart must report the recovery scan: {stderr}"
        );
        assert_eq!(responses.len(), burst.len());
        for (resp, tables) in responses.iter().zip(burst) {
            assert_eq!(
                str_field(resp, "status"),
                Some("ok"),
                "round {round}: {resp:?}"
            );
            assert_circuit_implements(resp, tables, &format!("round {round}"));
        }
    }
    // After the dust settles everything is cached, and each answer is
    // bit-identical to the pristine cold solve.
    let (settled, _) = run_batch(&cache, &[], &lines);
    for ((resp, reference), tables) in settled.iter().zip(&reference).zip(burst) {
        assert_eq!(str_field(resp, "cache"), Some("hit"), "{tables}: {resp:?}");
        assert_eq!(
            field(resp, "circuit"),
            field(reference, "circuit"),
            "{tables}: crash-recovered cache serves a different circuit than a cold solve"
        );
        assert_eq!(
            field(resp, "proven_optimal"),
            field(reference, "proven_optimal"),
            "{tables}: verdict drifted"
        );
    }
    let _ = std::fs::remove_dir_all(&cache);
}

/// Overload shedding is reachable and explicit: a tiny queue + pipelined
/// burst must produce at least one `overloaded` response, and every
/// accepted job still resolves correctly.
#[test]
fn overload_sheds_explicitly_instead_of_buffering() {
    let cache = temp_dir("overload");
    // Admission happens before cache lookup, so even identical requests
    // exert queue pressure; a 12-deep pipelined burst against a depth-1
    // queue must trip the shed path.
    let lines: Vec<String> = (0..12)
        .map(|i| minimize_line(&format!("b{i}"), "0110", ""))
        .collect();
    let (responses, _) = run_batch(&cache, &["--workers", "1", "--queue-depth", "1"], &lines);
    assert_eq!(responses.len(), lines.len(), "every request gets a line");
    let overloaded = responses
        .iter()
        .filter(|r| str_field(r, "status") == Some("overloaded"))
        .count();
    let ok = responses
        .iter()
        .filter(|r| str_field(r, "status") == Some("ok"))
        .count();
    assert!(ok >= 1, "at least the first job must be served");
    assert!(
        overloaded >= 1,
        "a 12-deep pipelined burst against queue-depth 1 must shed; statuses: {:?}",
        responses
            .iter()
            .map(|r| str_field(r, "status").unwrap_or("?").to_string())
            .collect::<Vec<_>>()
    );
    for resp in responses
        .iter()
        .filter(|r| str_field(r, "status") == Some("ok"))
    {
        assert_circuit_implements(resp, "0110", "served under overload");
    }
    let _ = std::fs::remove_dir_all(&cache);
}
