//! Differential lockdown of the inprocessing layer and the diversified
//! portfolio.
//!
//! Inprocessing (bounded variable elimination, subsumption with
//! self-subsuming resolution, vivification) and portfolio diversification
//! (per-worker seed / phase / restart policy) are pure *performance*
//! features: for every function, engine, and worker count the verdict —
//! `proven_optimal`, presence of a best circuit, its optimal metrics —
//! must be identical with the features on and off, and decoded circuits
//! must survive device-model replay. Any divergence is a soundness bug in
//! the clause-database rewriting or the model reconstruction, never an
//! acceptable trade-off.

use memristive_mm::boolfn::{generators, MultiOutputFn, TruthTable};
use memristive_mm::circuit::{CircuitError, MmCircuit, Schedule};
use memristive_mm::sat::Budget;
use memristive_mm::synth::optimize::{parallel, OptimizeReport};
use memristive_mm::synth::{EncodeOptions, Synthesizer};

/// Worker counts every case runs under (mirrors ISSUE 5/10 acceptance).
const JOBS: [usize; 3] = [1, 2, 8];

/// The four engine configurations under test: warm/cold × inprocess
/// on/off. The cold no-inprocess engine is the pre-feature baseline.
fn engines() -> [(&'static str, Synthesizer); 4] {
    let on = Budget::new();
    let off = Budget::new().with_inprocess(false);
    [
        (
            "cold/no-inprocess",
            Synthesizer::new().with_budget(off.clone()),
        ),
        ("cold/inprocess", Synthesizer::new().with_budget(on.clone())),
        (
            "warm/no-inprocess",
            Synthesizer::new().with_incremental(true).with_budget(off),
        ),
        (
            "warm/inprocess",
            Synthesizer::new().with_incremental(true).with_budget(on),
        ),
    ]
}

/// Same-verdict assertion: optimality claim, witness presence, witness
/// metrics. Call counts/orders may differ and are not compared.
fn assert_same_verdict(label: &str, baseline: &OptimizeReport, report: &OptimizeReport) {
    assert_eq!(
        baseline.proven_optimal, report.proven_optimal,
        "{label}: proven_optimal diverged"
    );
    match (&baseline.best, &report.best) {
        (None, None) => {}
        (Some(b), Some(r)) => {
            assert_eq!(
                b.metrics().n_rops,
                r.metrics().n_rops,
                "{label}: optimal N_R diverged"
            );
            assert_eq!(
                b.metrics().n_vsteps,
                r.metrics().n_vsteps,
                "{label}: optimal N_VS diverged"
            );
            assert_eq!(
                b.metrics().n_legs,
                r.metrics().n_legs,
                "{label}: optimal N_L diverged"
            );
        }
        _ => panic!("{label}: witness presence diverged"),
    }
}

/// Replays the circuit's schedule on the ideal device model, input by
/// input; falls back to the truth-table check for families without a
/// line-array schedule.
fn device_verify(label: &str, circuit: &MmCircuit, f: &MultiOutputFn) {
    match Schedule::compile(circuit) {
        Ok(schedule) => assert!(
            schedule.verify(f),
            "{label}: device-model replay diverged from the spec"
        ),
        Err(CircuitError::UnsupportedROpKind { .. }) => {
            assert!(circuit.implements(f), "{label}: truth-table check failed");
        }
        Err(e) => panic!("{label}: schedule compilation failed: {e}"),
    }
}

/// Every 2-input NPN class through the pure V-op step ladder, all four
/// engine configurations, all worker counts: the `d_step` guard family
/// must survive inprocessing's variable elimination (the guards are
/// frozen) in both SAT and UNSAT-everywhere (XOR-class) ladders.
#[test]
fn npn_census_vsteps_ladders_are_inprocess_invariant() {
    let opts = EncodeOptions::recommended();
    let mut classes: Vec<u32> = (0..16u32).map(npn_canonical_2).collect();
    classes.sort_unstable();
    classes.dedup();
    assert_eq!(classes.len(), 4, "2-input NPN classes");

    for &bits in &classes {
        let tt = TruthTable::from_packed(2, u64::from(bits)).expect("2-input table");
        let f = MultiOutputFn::new(format!("npn{bits:x}"), vec![tt]).expect("one output");
        let baseline = parallel::minimize_vsteps(&engines()[0].1, &f, 0, 1, 4, &opts, 1)
            .expect("baseline ladder runs");
        for (name, synth) in engines() {
            for jobs in JOBS {
                let report = parallel::minimize_vsteps(&synth, &f, 0, 1, 4, &opts, jobs)
                    .expect("ladder runs");
                let label = format!("npn {bits:04b} vsteps {name} jobs={jobs}");
                assert_same_verdict(&label, &baseline, &report);
                if let Some(c) = &report.best {
                    device_verify(&label, c, &f);
                }
            }
        }
    }
}

/// The 1-bit ripple adder's full two-phase mixed-mode ladder (the paper's
/// Table IV row): 3 inputs, 2 outputs, outer `N_R` descent plus inner
/// step descent — the workload the warm portfolio actually runs in anger.
#[test]
fn adder_mixed_mode_ladder_is_inprocess_invariant() {
    let opts = EncodeOptions::recommended();
    let f = generators::ripple_adder(1);
    let baseline = parallel::minimize_mixed_mode(&engines()[0].1, &f, 3, 3, true, &opts, 1)
        .expect("baseline ladder runs");
    for (name, synth) in engines() {
        for jobs in JOBS {
            let report = parallel::minimize_mixed_mode(&synth, &f, 3, 3, true, &opts, jobs)
                .expect("ladder runs");
            let label = format!("adder1 mixed-mode {name} jobs={jobs}");
            assert_same_verdict(&label, &baseline, &report);
            let best = report.best.as_ref().expect("adder1 is MM-realizable");
            assert!(best.implements(&f), "{label}: truth-table check failed");
            device_verify(&label, best, &f);
        }
    }
}

/// The GF(2^2) multiplier's inner step ladder at the paper's optimal
/// `N_R = 4` (Table IV: `N_VS = 3`): the large-encoding, long-row regime
/// the inprocessing layer targets. Too heavy for a debug-mode run, so it
/// is `#[ignore]`d here and executed in release by the CI inprocessing
/// leg (`cargo test --release --test inprocess_differential -- --ignored`).
#[test]
#[ignore = "release-mode workload; run by the CI inprocessing leg"]
fn gf22_vsteps_ladder_is_inprocess_invariant() {
    let opts = EncodeOptions::recommended();
    let f = generators::gf22_multiplier();
    let baseline = parallel::minimize_vsteps(&engines()[0].1, &f, 4, 6, 3, &opts, 1)
        .expect("baseline ladder runs");
    for (name, synth) in engines() {
        for jobs in [1, 2] {
            let report =
                parallel::minimize_vsteps(&synth, &f, 4, 6, 3, &opts, jobs).expect("ladder runs");
            let label = format!("gf22 vsteps {name} jobs={jobs}");
            assert_same_verdict(&label, &baseline, &report);
            if let Some(c) = &report.best {
                device_verify(&label, c, &f);
            }
        }
    }
}

/// The canonical (smallest) NPN representative of a 2-input function —
/// same classifier as `census_vs_sat.rs`.
fn npn_canonical_2(bits: u32) -> u32 {
    let row = |b: u32, x1: u32, x2: u32| (b >> (x1 | (x2 << 1))) & 1;
    let mut best = u32::MAX;
    for swap in [false, true] {
        for neg1 in [0u32, 1] {
            for neg2 in [0u32, 1] {
                for negout in [0u32, 1] {
                    let mut t = 0u32;
                    for x1 in 0..2u32 {
                        for x2 in 0..2u32 {
                            let (a, b) = if swap { (x2, x1) } else { (x1, x2) };
                            let v = row(bits, a ^ neg1, b ^ neg2) ^ negout;
                            t |= v << (x1 | (x2 << 1));
                        }
                    }
                    best = best.min(t);
                }
            }
        }
    }
    best
}
