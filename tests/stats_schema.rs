//! Golden-file tests for the `--stats-json` sidecar schema.
//!
//! The sidecar is a machine-readable contract: downstream tooling (the
//! bench reporter, `scripts/lint_report.py`, CI diff legs) keys on exact
//! field names. These tests pin the key *lists and order* per subcommand
//! and the semantics of the shared fields (`schema_version`,
//! `incremental`, `degraded`) so a rename or reorder is a deliberate,
//! reviewed schema bump rather than an accident.

use std::path::PathBuf;
use std::process::Command;

use serde::Value;

const STATS_SCHEMA_VERSION: u64 = 1;

fn run_with_stats(args: &[&str], name: &str) -> (std::process::Output, Value) {
    let path: PathBuf =
        std::env::temp_dir().join(format!("stats_schema_{name}_{}.json", std::process::id()));
    let output = Command::new(env!("CARGO_BIN_EXE_mmsynth"))
        .args(args)
        .arg("--stats-json")
        .arg(&path)
        .output()
        .expect("mmsynth runs");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "stats file missing for {name}: {e}; stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        )
    });
    let _ = std::fs::remove_file(&path);
    (output, serde_json::from_str(&text).expect("stats parse"))
}

fn keys(stats: &Value) -> Vec<String> {
    match stats {
        Value::Object(fields) => fields.iter().map(|(k, _)| k.clone()).collect(),
        other => panic!("stats is not an object: {other:?}"),
    }
}

fn get(stats: &Value, key: &str) -> Value {
    match stats {
        Value::Object(fields) => fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| panic!("stats field {key} missing")),
        other => panic!("stats is not an object: {other:?}"),
    }
}

#[test]
fn synth_stats_schema_is_stable() {
    let (output, stats) = run_with_stats(
        &["synth", "--function", "xor2", "--rops", "2", "--steps", "3"],
        "synth",
    );
    assert!(output.status.success());
    assert_eq!(
        keys(&stats),
        [
            "schema_version",
            "command",
            "function",
            "result",
            "n_vars",
            "n_clauses",
            "solver_stats",
        ]
    );
    assert_eq!(
        get(&stats, "schema_version"),
        Value::UInt(STATS_SCHEMA_VERSION)
    );
    assert_eq!(get(&stats, "command"), Value::Str("synth".into()));
    assert_eq!(get(&stats, "result"), Value::Str("realizable".into()));
}

#[test]
fn minimize_stats_schema_is_stable() {
    let (output, stats) = run_with_stats(
        &["minimize", "--function", "xor2", "--max-rops", "2"],
        "minimize",
    );
    assert!(output.status.success());
    assert_eq!(
        keys(&stats),
        [
            "schema_version",
            "command",
            "function",
            "proven_optimal",
            "degraded",
            "incremental",
            "inprocess",
            "n_calls",
            "certified_unsat",
            "total_solver_time_us",
            "calls",
        ]
    );
    assert_eq!(
        get(&stats, "schema_version"),
        Value::UInt(STATS_SCHEMA_VERSION)
    );
    assert_eq!(get(&stats, "command"), Value::Str("minimize".into()));
    // The ladder is incremental by default and this run completes.
    assert_eq!(get(&stats, "incremental"), Value::Bool(true));
    // Inprocessing is on by default too.
    assert_eq!(get(&stats, "inprocess"), Value::Bool(true));
    assert_eq!(get(&stats, "degraded"), Value::Bool(false));
}

#[test]
fn minimize_stats_track_the_incremental_flag() {
    let (output, stats) = run_with_stats(
        &[
            "minimize",
            "--function",
            "xor2",
            "--max-rops",
            "2",
            "--no-incremental",
        ],
        "cold",
    );
    assert!(output.status.success());
    assert_eq!(get(&stats, "incremental"), Value::Bool(false));
}

#[test]
fn minimize_stats_track_the_inprocess_flag() {
    let (output, stats) = run_with_stats(
        &[
            "minimize",
            "--function",
            "xor2",
            "--max-rops",
            "2",
            "--no-inprocess",
        ],
        "no_inprocess",
    );
    assert!(output.status.success());
    assert_eq!(get(&stats, "inprocess"), Value::Bool(false));
    // The knob is solver-internal; the verdict fields are unaffected.
    assert_eq!(get(&stats, "incremental"), Value::Bool(true));
}

#[test]
fn minimize_stats_report_degradation_and_exit_2() {
    let (output, stats) = run_with_stats(
        &[
            "minimize",
            "--function",
            "xor2",
            "--max-rops",
            "2",
            "--deadline",
            "0",
        ],
        "degraded",
    );
    assert_eq!(
        output.status.code(),
        Some(2),
        "degraded runs exit 2 (inconclusive)"
    );
    assert_eq!(get(&stats, "degraded"), Value::Bool(true));
    assert_eq!(get(&stats, "proven_optimal"), Value::Bool(false));
}

#[test]
fn fuzz_stats_schema_is_stable() {
    let (output, stats) = run_with_stats(&["fuzz", "--seed", "42", "--budget", "3"], "fuzz");
    assert!(output.status.success());
    assert_eq!(
        keys(&stats),
        [
            "schema_version",
            "command",
            "seed",
            "budget",
            "scenarios",
            "degraded_scenarios",
            "violations",
            "fingerprint",
            "archived",
        ]
    );
    assert_eq!(
        get(&stats, "schema_version"),
        Value::UInt(STATS_SCHEMA_VERSION)
    );
    assert_eq!(get(&stats, "command"), Value::Str("fuzz".into()));
    assert_eq!(get(&stats, "seed"), Value::UInt(42));
    assert_eq!(get(&stats, "scenarios"), Value::UInt(3));
    assert_eq!(get(&stats, "violations"), Value::UInt(0));
    match get(&stats, "fingerprint") {
        Value::Str(hex) => {
            assert_eq!(hex.len(), 16, "fingerprint is a zero-padded u64 hex string");
            assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
        }
        other => panic!("fingerprint is not a string: {other:?}"),
    }
}
