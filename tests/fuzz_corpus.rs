//! Replays the committed regression corpus (`tests/corpus/*.json`).
//!
//! Every archived case — seed cases and shrunk reproducers alike — must
//! load under the current corpus schema, run the full pipeline with zero
//! invariant violations, and reproduce bit-for-bit on a second run. This
//! is the tier-1 gate that keeps once-fixed fuzz findings fixed.

use std::path::PathBuf;

use memristive_mm::synth::fuzz::{
    run_scenario, seed_corpus, Corpus, FuzzConfig, CORPUS_SCHEMA_VERSION,
};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn corpus_loads_and_is_well_formed() {
    let cases = Corpus::open(corpus_dir())
        .expect("corpus dir")
        .load()
        .expect("corpus loads");
    assert!(
        cases.len() >= 10,
        "regression corpus shrank to {} cases; it must keep at least the seed set",
        cases.len()
    );
    for (path, case) in &cases {
        assert_eq!(
            case.schema_version,
            CORPUS_SCHEMA_VERSION,
            "{}: wrong schema version",
            path.display()
        );
        assert!(
            !case.description.is_empty(),
            "{}: cases must say why they are archived",
            path.display()
        );
        assert!(!case.scenario.outputs.is_empty(), "{}", path.display());
        assert!(!case.scenario.jobs.is_empty(), "{}", path.display());
    }
}

#[test]
fn committed_corpus_contains_every_seed_case() {
    // `--emit-seed-corpus` writes `seed_corpus()` into tests/corpus; this
    // pins that the committed files never drift from the code.
    let cases = Corpus::open(corpus_dir())
        .expect("corpus dir")
        .load()
        .expect("corpus loads");
    for seed_case in seed_corpus() {
        let committed = cases
            .iter()
            .map(|(_, c)| c)
            .find(|c| c.scenario.name == seed_case.scenario.name)
            .unwrap_or_else(|| {
                panic!(
                    "seed case {} missing from tests/corpus; regenerate with \
                     `mmsynth fuzz --emit-seed-corpus --corpus tests/corpus`",
                    seed_case.scenario.name
                )
            });
        assert_eq!(
            committed, &seed_case,
            "committed copy of {} is stale",
            seed_case.scenario.name
        );
    }
}

#[test]
fn every_corpus_case_replays_clean_and_deterministically() {
    let cases = Corpus::open(corpus_dir())
        .expect("corpus dir")
        .load()
        .expect("corpus loads");
    let cfg = FuzzConfig::default();
    for (path, case) in &cases {
        let first = run_scenario(&case.scenario, &cfg)
            .unwrap_or_else(|e| panic!("{}: scenario error: {e}", path.display()));
        assert!(
            first.violations.is_empty(),
            "{}: regression resurfaced: {:?}",
            path.display(),
            first.violations
        );
        let second = run_scenario(&case.scenario, &cfg).expect("second run");
        assert_eq!(
            first.fingerprint,
            second.fingerprint,
            "{}: replay is not deterministic",
            path.display()
        );
    }
}

#[test]
fn corpus_covers_the_key_regimes() {
    // The corpus is only useful if it keeps exercising every pipeline
    // regime; deleting the wrong cases should fail loudly, not silently
    // shrink coverage.
    let cases = Corpus::open(corpus_dir())
        .expect("corpus dir")
        .load()
        .expect("corpus loads");
    let scenarios: Vec<_> = cases.iter().map(|(_, c)| &c.scenario).collect();
    assert!(
        scenarios.iter().any(|s| s.zero_deadline),
        "no degraded case"
    );
    assert!(scenarios.iter().any(|s| s.certify), "no certified case");
    assert!(scenarios.iter().any(|s| s.repair), "no repair case");
    assert!(
        scenarios.iter().any(|s| !s.avoid_cells.is_empty()),
        "no cell-avoidance case"
    );
    assert!(
        scenarios.iter().any(|s| s.fault_plan.is_some()),
        "no fault-campaign case"
    );
    assert!(
        scenarios.iter().any(|s| s.max_conflicts.is_some()),
        "no conflict-capped case"
    );
    assert!(
        scenarios.iter().any(|s| s.max_vsteps == 0),
        "no R-only case"
    );
    assert!(
        scenarios.iter().any(|s| s.jobs.len() > 1),
        "no multi-job invariance case"
    );
    assert!(
        scenarios.iter().any(|s| !s.inprocess),
        "no --no-inprocess case"
    );
    assert!(
        scenarios.iter().any(|s| s.inprocess && s.certify),
        "no inprocess+certify case"
    );
    assert!(
        scenarios
            .iter()
            .any(|s| s.inprocess && s.max_conflicts.is_some()),
        "no inprocess+cancel case"
    );
}
