//! End-to-end certification harness over the 2-input example set.
//!
//! This is the executable form of the PR's acceptance criterion: every
//! UNSAT produced during certified minimization is backed by a DRAT proof
//! that the in-tree checker accepts — and accepts against a *freshly
//! re-encoded* formula, so the certificate does not depend on the CNF
//! object the solver happened to see. A deliberately corrupted proof is
//! demonstrably rejected on the same instances.
//!
//! When a proof fails to check, its DRAT text is dumped to
//! `$MMSYNTH_PROOF_ARTIFACT_DIR` (if set) before the test panics; the CI
//! certify leg uploads that directory so the failing certificate can be
//! inspected — or fed to an external checker — offline.

use memristive_mm::boolfn::{generators, MultiOutputFn, TruthTable};
use memristive_mm::sat::drat::{check, DratError};
use memristive_mm::sat::DratProof;
use memristive_mm::synth::optimize::{parallel, CallRecord, SynthResultKind};
use memristive_mm::synth::{EncodeOptions, SynthSpec, Synthesizer};

/// The 2-input example set: every Table-IV-style small spec the README
/// walks through.
fn example_set() -> Vec<(&'static str, MultiOutputFn)> {
    vec![
        ("and2", generators::and_gate(2)),
        ("or2", generators::or_gate(2)),
        ("xor2", generators::xor_gate(2)),
        ("nor2", generators::nor_gate(2)),
        ("xnor2", {
            let tt = TruthTable::from_packed(2, 0b1001).expect("2-input table");
            MultiOutputFn::new("xnor2", vec![tt]).expect("one output")
        }),
    ]
}

fn dump_artifact(name: &str, proof: &DratProof) {
    if let Ok(dir) = std::env::var("MMSYNTH_PROOF_ARTIFACT_DIR") {
        if std::fs::create_dir_all(&dir).is_ok() {
            let path = format!("{dir}/{name}.drat");
            let _ = std::fs::write(&path, proof.to_drat_string());
            eprintln!("failing proof dumped to {path}");
        }
    }
}

/// Re-encodes the call's spec from scratch (via the DIMACS round trip, so
/// not even the in-process `CnfFormula` is shared) and checks the archived
/// proof against it.
fn check_against_reencoded(name: &str, call: &CallRecord, spec: &SynthSpec) {
    let proof = call.proof.as_ref().expect("certified call keeps its proof");
    let text = Synthesizer::new()
        .export_dimacs(spec)
        .expect("spec re-encodes");
    let cnf = memristive_mm::sat::dimacs::parse(&text).expect("exported DIMACS parses");
    if let Err(e) = check(&cnf, proof) {
        let label = format!(
            "{name}_nR{}_nL{}_nVS{}",
            call.n_rops, call.n_legs, call.n_vsteps
        );
        dump_artifact(&label, proof);
        panic!("{label}: archived proof rejected against re-encoded formula: {e}");
    }
}

#[test]
fn every_unsat_in_certified_minimization_is_proof_backed() {
    let opts = EncodeOptions::recommended();
    let synth = Synthesizer::new().with_certification(true);
    let mut certified_total = 0usize;
    for (name, f) in example_set() {
        // R-only ladder (the conventional-paradigm baseline).
        let report = parallel::minimize_r_only(&synth, &f, 4, &opts, 2)
            .unwrap_or_else(|e| panic!("{name} r-only ladder: {e}"));
        for call in &report.calls {
            if call.result == SynthResultKind::Unrealizable {
                assert!(
                    call.certified,
                    "{name}: uncertified UNSAT at N_R={}",
                    call.n_rops
                );
                let spec = SynthSpec::r_only(&f, call.n_rops)
                    .expect("recorded budgets are valid")
                    .with_options(opts.clone());
                check_against_reencoded(name, call, &spec);
                certified_total += 1;
            }
        }

        // Mixed-mode V-step ladder at N_R = 0 (the universality boundary —
        // XOR-likes produce UNSAT at every rung).
        let report = parallel::minimize_vsteps(&synth, &f, 0, 1, 3, &opts, 2)
            .unwrap_or_else(|e| panic!("{name} vsteps ladder: {e}"));
        for call in &report.calls {
            if call.result == SynthResultKind::Unrealizable {
                assert!(
                    call.certified,
                    "{name}: uncertified UNSAT at N_VS={}",
                    call.n_vsteps
                );
                let spec = SynthSpec::mixed_mode(&f, call.n_rops, call.n_legs, call.n_vsteps)
                    .expect("recorded budgets are valid")
                    .with_options(opts.clone());
                check_against_reencoded(name, call, &spec);
                certified_total += 1;
            }
        }
    }
    assert!(
        certified_total >= 3,
        "the example set must exercise real UNSAT rungs (got {certified_total})"
    );
}

#[test]
fn corrupted_certificates_are_rejected_end_to_end() {
    // Produce one genuine certificate, then corrupt it the ways a broken
    // archive could: truncation, a dropped conclusion line in the text,
    // and a flipped literal in the spine.
    let f = generators::xor_gate(2);
    let spec = SynthSpec::mixed_mode(&f, 0, 2, 2).expect("valid spec");
    let outcome = Synthesizer::new()
        .with_certification(true)
        .run(&spec)
        .expect("certified run");
    assert!(outcome.is_unrealizable(), "XOR2 is not V-op realizable");
    let cert = outcome.certificate.expect("certificate present");
    let text = Synthesizer::new().export_dimacs(&spec).expect("re-encode");
    let cnf = memristive_mm::sat::dimacs::parse(&text).expect("parses");
    check(&cnf, &cert.proof).expect("the genuine certificate checks");

    // Truncation at the binary level.
    let truncated = DratProof::from_steps(cert.proof.steps()[..cert.proof.n_steps() - 1].to_vec());
    assert_eq!(check(&cnf, &truncated), Err(DratError::NoEmptyClause));

    // Truncation at the text level: strip the final conclusion line, as a
    // partially written proof file would look after a crash.
    let drat_text = cert.proof.to_drat_string();
    let stripped = drat_text
        .trim_end()
        .strip_suffix("0")
        .expect("DRAT text ends with the bare empty-clause terminator");
    let reparsed = DratProof::parse(stripped).expect("still valid DRAT text");
    assert_eq!(check(&cnf, &reparsed), Err(DratError::NoEmptyClause));

    // Reordering: claiming the conclusion first.
    let mut steps = cert.proof.steps().to_vec();
    let conclusion = steps.pop().expect("non-empty");
    steps.insert(0, conclusion);
    assert!(
        check(&cnf, &DratProof::from_steps(steps)).is_err(),
        "conclusion-first proof must not check"
    );
}
