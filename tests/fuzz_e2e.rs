//! End-to-end tests of the scenario fuzzer itself: sweep determinism,
//! catch → shrink → archive on an injected violation, corpus JSON
//! roundtrips, and the `mmsynth fuzz` CLI contract.

use std::process::Command;

use memristive_mm::synth::fuzz::{
    run_fuzz, run_scenario, Corpus, CorpusCase, FuzzConfig, FuzzScenario, CORPUS_SCHEMA_VERSION,
};
use proptest::prelude::*;

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mmsynth_fuzz_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn fuzz_sweeps_are_reproducible_from_the_seed() {
    let cfg = FuzzConfig::default();
    let a = run_fuzz(42, 10, None, &cfg, |_, _| {});
    let b = run_fuzz(42, 10, None, &cfg, |_, _| {});
    assert_eq!(a.scenarios, 10);
    assert!(a.violations.is_empty(), "{:?}", a.violations);
    assert_eq!(
        a.fingerprint, b.fingerprint,
        "same seed and budget must replay bit-for-bit"
    );

    let c = run_fuzz(43, 10, None, &cfg, |_, _| {});
    assert_ne!(
        a.fingerprint, c.fingerprint,
        "different seeds should explore different scenarios"
    );
}

#[test]
fn injected_violation_is_caught_shrunk_archived_and_replayable() {
    let dir = temp_dir("inject");
    let corpus = Corpus::open(&dir).expect("corpus dir");
    let cfg = FuzzConfig {
        inject_violation: true,
    };
    let summary = run_fuzz(42, 5, Some(&corpus), &cfg, |_, _| {});
    assert!(
        !summary.violations.is_empty(),
        "the deliberate violation must be caught"
    );
    assert!(
        !summary.archived.is_empty(),
        "failing scenarios must be archived"
    );

    // The archived reproducers are shrunk (the injected predicate fires on
    // >= 2 minterms, so a minimal reproducer has exactly 2) and replay the
    // same violation straight from disk.
    let cases = corpus.load().expect("corpus loads");
    assert_eq!(cases.len(), summary.archived.len());
    for (path, case) in &cases {
        assert_eq!(case.schema_version, CORPUS_SCHEMA_VERSION);
        let ones: usize = case
            .scenario
            .outputs
            .iter()
            .map(|bits| bits.chars().filter(|&c| c == '1').count())
            .sum();
        assert_eq!(ones, 2, "{}: reproducer is not minimal", path.display());
        let replay = run_scenario(&case.scenario, &cfg).expect("replays");
        assert!(
            replay.violations.iter().any(|v| v.invariant == "injected"),
            "{}: archived case no longer reproduces",
            path.display()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mmsynth_fuzz_cli_exit_codes_and_stats() {
    let stats = std::env::temp_dir().join(format!("fuzz_stats_{}.json", std::process::id()));
    let clean = Command::new(env!("CARGO_BIN_EXE_mmsynth"))
        .args(["fuzz", "--seed", "42", "--budget", "5", "--stats-json"])
        .arg(&stats)
        .output()
        .expect("mmsynth runs");
    assert!(
        clean.status.success(),
        "clean fuzz run must exit 0: {}",
        String::from_utf8_lossy(&clean.stderr)
    );
    let stdout = String::from_utf8_lossy(&clean.stdout);
    assert!(
        stdout.contains("5 scenarios (seed 42), ") && stdout.contains(" 0 violations"),
        "unexpected summary line: {stdout}"
    );
    assert!(stats.exists(), "--stats-json file missing");
    let _ = std::fs::remove_file(&stats);

    let dir = temp_dir("cli_inject");
    let injected = Command::new(env!("CARGO_BIN_EXE_mmsynth"))
        .args([
            "fuzz",
            "--seed",
            "42",
            "--budget",
            "5",
            "--inject-violation",
        ])
        .arg("--corpus")
        .arg(&dir)
        .output()
        .expect("mmsynth runs");
    assert_eq!(
        injected.status.code(),
        Some(1),
        "violations must exit 1: {}",
        String::from_utf8_lossy(&injected.stderr)
    );

    // And the archive it just wrote replays (with the injection flag off
    // the shrunk scenarios are healthy, so --replay passes).
    let replay = Command::new(env!("CARGO_BIN_EXE_mmsynth"))
        .arg("fuzz")
        .arg("--replay")
        .arg(&dir)
        .output()
        .expect("mmsynth runs");
    assert!(
        replay.status.success(),
        "replay of shrunk corpus failed: {}",
        String::from_utf8_lossy(&replay.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Generated scenarios roundtrip through the corpus JSON format.
    #[test]
    fn scenarios_roundtrip_through_corpus_json(root in any::<u64>(), index in 0u64..1024) {
        let scenario = FuzzScenario::generate(root, index);
        let case = CorpusCase {
            schema_version: CORPUS_SCHEMA_VERSION,
            description: "roundtrip".to_string(),
            scenario: scenario.clone(),
        };
        let text = serde_json::to_string_pretty(&case).expect("serializes");
        let back: CorpusCase = serde_json::from_str(&text).expect("parses");
        prop_assert_eq!(back.scenario, scenario);
        prop_assert_eq!(back.schema_version, CORPUS_SCHEMA_VERSION);
    }

    /// Scenario generation is a pure function of (root seed, index).
    #[test]
    fn scenario_generation_is_pure(root in any::<u64>(), index in 0u64..1024) {
        prop_assert_eq!(
            FuzzScenario::generate(root, index),
            FuzzScenario::generate(root, index)
        );
    }
}
