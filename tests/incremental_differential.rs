//! Differential lockdown of the incremental ladder engine.
//!
//! The incremental engine (shared-base encoding + assumption-activated
//! rungs + portfolio clause sharing) is a pure *performance* feature: for
//! every function, every ladder shape, and every worker count it must
//! return exactly the verdict of the classic cold engine — same
//! `proven_optimal`, same presence of a best circuit, same optimal metrics
//! — and its decoded circuits must survive device-model verification, not
//! just the truth-table check. Any divergence here means the shared base
//! is not equisatisfiable with the per-rung encodings and is a soundness
//! bug, never an acceptable trade-off.

use memristive_mm::boolfn::{generators, MultiOutputFn, TruthTable};
use memristive_mm::circuit::{CircuitError, MmCircuit, Schedule};
use memristive_mm::device::DeviceState;
use memristive_mm::synth::optimize::{parallel, OptimizeReport};
use memristive_mm::synth::repair::{synthesize_with_repair, RepairConfig};
use memristive_mm::synth::{EncodeOptions, SynthSpec, Synthesizer};

/// The worker counts every differential case runs under (ISSUE 5
/// acceptance: 1, 2 and 8).
const JOBS: [usize; 3] = [1, 2, 8];

fn cold() -> Synthesizer {
    Synthesizer::new()
}

fn warm() -> Synthesizer {
    Synthesizer::new().with_incremental(true)
}

/// Both engines must agree on the *verdict*: optimality claim, presence of
/// a witness, and the witness's optimal metrics. Call counts and orders
/// may differ (the warm engine skips re-encoding; cancellation is timing
/// dependent) and are deliberately not compared.
fn assert_same_verdict(label: &str, cold: &OptimizeReport, warm: &OptimizeReport) {
    assert_eq!(
        cold.proven_optimal, warm.proven_optimal,
        "{label}: proven_optimal diverged"
    );
    match (&cold.best, &warm.best) {
        (None, None) => {}
        (Some(c), Some(w)) => {
            assert_eq!(
                c.metrics().n_rops,
                w.metrics().n_rops,
                "{label}: optimal N_R diverged"
            );
            assert_eq!(
                c.metrics().n_vsteps,
                w.metrics().n_vsteps,
                "{label}: optimal N_VS diverged"
            );
            assert_eq!(
                c.metrics().n_legs,
                w.metrics().n_legs,
                "{label}: optimal N_L diverged"
            );
        }
        _ => panic!("{label}: witness presence diverged (cold={cold:?} warm={warm:?})"),
    }
}

/// Replays the circuit's schedule on the ideal device model, input by
/// input — the strongest in-tree check a decoded circuit can pass.
/// (Families without a line-array schedule fall back to the truth-table
/// check the synthesizer already ran.)
fn device_verify(label: &str, circuit: &MmCircuit, f: &MultiOutputFn) {
    match Schedule::compile(circuit) {
        Ok(schedule) => assert!(
            schedule.verify(f),
            "{label}: device-model replay diverged from the spec"
        ),
        Err(CircuitError::UnsupportedROpKind { .. }) => {
            assert!(circuit.implements(f), "{label}: truth-table check failed");
        }
        Err(e) => panic!("{label}: schedule compilation failed: {e}"),
    }
}

/// Every 2-input NPN class through the pure V-op step ladder: exercises
/// the `d_step` guard family (no R-ops, no spare legs) on both SAT and
/// UNSAT-everywhere (XOR-class) ladders.
#[test]
fn npn_census_vsteps_ladders_match_cold_engine() {
    let opts = EncodeOptions::recommended();
    let mut classes: Vec<u32> = (0..16u32).map(npn_canonical_2).collect();
    classes.sort_unstable();
    classes.dedup();
    assert_eq!(classes.len(), 4, "2-input NPN classes");

    for &bits in &classes {
        let tt = TruthTable::from_packed(2, u64::from(bits)).expect("2-input table");
        let f = MultiOutputFn::new(format!("npn{bits:x}"), vec![tt]).expect("one output");
        let baseline =
            parallel::minimize_vsteps(&cold(), &f, 0, 1, 4, &opts, 1).expect("cold ladder runs");
        for jobs in JOBS {
            let report = parallel::minimize_vsteps(&warm(), &f, 0, 1, 4, &opts, jobs)
                .expect("warm ladder runs");
            let label = format!("npn {bits:04b} vsteps jobs={jobs}");
            assert_same_verdict(&label, &baseline, &report);
            if let Some(c) = &report.best {
                device_verify(&label, c, &f);
            }
        }
    }
}

/// Mixed-mode ladders over functions with genuinely different optima:
/// exercises all three guard families (`d_rop`, `d_leg`, `d_step`) plus
/// the two-phase outer/inner portfolio composition.
#[test]
fn mixed_mode_ladders_match_cold_engine() {
    let opts = EncodeOptions::recommended();
    for f in [
        generators::xor_gate(2),
        generators::and_gate(3),
        generators::nor_gate(2),
    ] {
        let baseline = parallel::minimize_mixed_mode(&cold(), &f, 3, 3, false, &opts, 1)
            .expect("cold ladder runs");
        for jobs in JOBS {
            let report = parallel::minimize_mixed_mode(&warm(), &f, 3, 3, false, &opts, jobs)
                .expect("warm ladder runs");
            let label = format!("{} mixed-mode jobs={jobs}", f.name());
            assert_same_verdict(&label, &baseline, &report);
            let best = report.best.as_ref().expect("all three are MM-realizable");
            assert!(best.implements(&f), "{label}: truth-table check failed");
            device_verify(&label, best, &f);
        }
    }
}

/// R-only ladders: the `d_rop`-only degenerate shape (no legs, no steps),
/// including a function (XOR2) whose first two rungs are UNSAT — the
/// regime where carried-over learned clauses could most plausibly corrupt
/// a later verdict.
#[test]
fn r_only_ladders_match_cold_engine() {
    let opts = EncodeOptions::recommended();
    for f in [generators::xor_gate(2), generators::nor_gate(2)] {
        let baseline =
            parallel::minimize_r_only(&cold(), &f, 5, &opts, 1).expect("cold ladder runs");
        for jobs in JOBS {
            let report =
                parallel::minimize_r_only(&warm(), &f, 5, &opts, jobs).expect("warm ladder runs");
            let label = format!("{} r-only jobs={jobs}", f.name());
            assert_same_verdict(&label, &baseline, &report);
            if let Some(c) = &report.best {
                device_verify(&label, c, &f);
            }
        }
    }
}

/// Serial (non-portfolio) ladders go through the same engine selection;
/// they must match their own cold counterparts too.
#[test]
fn serial_ladders_match_cold_engine() {
    use memristive_mm::synth::optimize as serial;
    let opts = EncodeOptions::recommended();
    let f = generators::xor_gate(2);
    let pairs = [
        (
            serial::minimize_r_only(&cold(), &f, 5, &opts).expect("cold runs"),
            serial::minimize_r_only(&warm(), &f, 5, &opts).expect("warm runs"),
            "serial r-only",
        ),
        (
            serial::minimize_mixed_mode(&cold(), &f, 3, 3, false, &opts).expect("cold runs"),
            serial::minimize_mixed_mode(&warm(), &f, 3, 3, false, &opts).expect("warm runs"),
            "serial mixed-mode",
        ),
    ];
    for (baseline, report, label) in &pairs {
        assert_same_verdict(label, baseline, report);
        if let Some(c) = &report.best {
            device_verify(label, c, &f);
        }
    }
}

/// The fault-repair path synthesizes under cell avoidance, which the
/// shared base cannot express — an incremental synthesizer must fall back
/// to the cold engine there and repair exactly as before.
#[test]
fn fault_repair_path_is_unchanged_by_the_incremental_flag() {
    use memristive_mm::circuit::FaultPlan;
    const ARRAY_SIZE: usize = 8;
    let f = generators::xor_gate(2);
    let spec = SynthSpec::mixed_mode(&f, 1, 2, 2).expect("valid spec");
    let plans = vec![FaultPlan::named("stuck-0").with_stuck(0, DeviceState::Lrs)];
    let config = RepairConfig::new(ARRAY_SIZE);

    let baseline = synthesize_with_repair(&cold(), &spec, &plans, &config).expect("repair runs");
    let incremental = synthesize_with_repair(&warm(), &spec, &plans, &config).expect("repair runs");
    assert_eq!(baseline.status, incremental.status);
    assert_eq!(baseline.avoided, incremental.avoided);
    let placed = incremental
        .placement
        .expect("repaired runs carry a placement");
    assert!(
        !placed.used_cells().contains(&0),
        "repaired schedule must not touch the stuck cell"
    );
    assert!(placed.verify(&f), "repaired schedule must compute XOR2");
}

/// The canonical (smallest) NPN representative of a 2-input function —
/// same classifier as `census_vs_sat.rs`.
fn npn_canonical_2(bits: u32) -> u32 {
    let row = |b: u32, x1: u32, x2: u32| (b >> (x1 | (x2 << 1))) & 1;
    let mut best = u32::MAX;
    for swap in [false, true] {
        for neg1 in [0u32, 1] {
            for neg2 in [0u32, 1] {
                for negout in [0u32, 1] {
                    let mut t = 0u32;
                    for x1 in 0..2u32 {
                        for x2 in 0..2u32 {
                            let (a, b) = if swap { (x2, x1) } else { (x1, x2) };
                            let v = row(bits, a ^ neg1, b ^ neg2) ^ negout;
                            t |= v << (x1 | (x2 << 1));
                        }
                    }
                    best = best.min(t);
                }
            }
        }
    }
    best
}
