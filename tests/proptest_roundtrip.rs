//! Property-based cross-crate invariants: for arbitrary functions, the
//! heuristic mapper, the schedule compiler, and the device simulator agree
//! with direct truth-table evaluation.

use memristive_mm::boolfn::{generators, MultiOutputFn, TruthTable};
use memristive_mm::circuit::Schedule;
use memristive_mm::device::{ElectricalParams, LineArray};
use memristive_mm::synth::heuristic;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// heuristic-map → symbolic eval ≡ spec, for every 3-input function.
    #[test]
    fn heuristic_map_is_correct(bits in 0u64..256) {
        let tt = TruthTable::from_packed(3, bits).expect("3-input table");
        let f = MultiOutputFn::new("prop", vec![tt]).expect("one output");
        let c = heuristic::map(&f).expect("maps");
        prop_assert!(c.implements(&f));
    }

    /// heuristic-map → schedule → ideal line array ≡ spec (full pipeline).
    #[test]
    fn pipeline_execution_matches_spec(bits in 0u64..65536) {
        let tt = TruthTable::from_packed(4, bits).expect("4-input table");
        let f = MultiOutputFn::new("prop", vec![tt]).expect("one output");
        let c = heuristic::map(&f).expect("maps");
        let schedule = Schedule::compile(&c).expect("schedulable");
        prop_assert!(schedule.verify(&f));
    }

    /// Electrical execution without variation agrees with ideal execution.
    #[test]
    fn electrical_equals_ideal(bits in 0u64..256, x in 0u32..8, seed in any::<u64>()) {
        let tt = TruthTable::from_packed(3, bits).expect("3-input table");
        let f = MultiOutputFn::new("prop", vec![tt]).expect("one output");
        let c = heuristic::map(&f).expect("maps");
        let schedule = Schedule::compile(&c).expect("schedulable");
        let ideal = schedule.run_ideal(x);
        let mut array = LineArray::bfo(schedule.n_cells(), ElectricalParams::bfo(), seed);
        let electric = schedule.execute(x, &mut array);
        prop_assert_eq!(ideal, electric);
    }

    /// Multi-output functions built from random pairs also survive the
    /// pipeline.
    #[test]
    fn multi_output_pipeline(b1 in 0u64..256, b2 in 0u64..256) {
        let t1 = TruthTable::from_packed(3, b1).expect("valid");
        let t2 = TruthTable::from_packed(3, b2).expect("valid");
        let f = MultiOutputFn::new("pair", vec![t1, t2]).expect("two outputs");
        let c = heuristic::map(&f).expect("maps");
        let schedule = Schedule::compile(&c).expect("schedulable");
        prop_assert!(schedule.verify(&f));
    }

    /// Serde round-trips preserve circuits exactly.
    #[test]
    fn serde_round_trip(bits in 0u64..65536) {
        let tt = TruthTable::from_packed(4, bits).expect("valid");
        let f = MultiOutputFn::new("prop", vec![tt]).expect("one output");
        let c = heuristic::map(&f).expect("maps");
        let json = serde_json::to_string(&c).expect("serializes");
        let back: memristive_mm::circuit::MmCircuit = serde_json::from_str(&json).expect("parses");
        prop_assert_eq!(c, back);
    }
}

/// Census monotonicity: more R-ops never shrink the reachable set.
#[test]
fn census_is_monotone() {
    use memristive_mm::synth::universality::{census, CensusConfig};
    let mut prev = 0;
    for k in 0..=4 {
        let now = census(&CensusConfig::new(3).with_pre(k));
        assert!(now >= prev, "k_pre = {k}");
        prev = now;
    }
    let mut prev = 0;
    for k in 0..=3 {
        let now = census(&CensusConfig::new(3).with_post(k));
        assert!(now >= prev, "k_post rounds = {k}");
        prev = now;
    }
}

/// The adder generators agree with the heuristic + simulator across
/// widths (a long-pipeline smoke of everything at once).
#[test]
fn adders_survive_everything() {
    for width in 1..=3u8 {
        let f = generators::ripple_adder(width);
        let c = heuristic::map(&f).expect("maps");
        let schedule = Schedule::compile(&c).expect("schedulable");
        assert!(schedule.verify(&f), "width {width}");
    }
}
