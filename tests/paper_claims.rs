//! Integration tests pinning the paper's qualitative claims, beyond the
//! per-crate unit tests.

use memristive_mm::boolfn::{generators, Literal, TruthTable};
use memristive_mm::sat::Budget;
use memristive_mm::synth::universality::{census, CensusConfig};
use memristive_mm::synth::{heuristic, SynthSpec, Synthesizer};
use std::time::Duration;

fn synth() -> Synthesizer {
    Synthesizer::new().with_budget(Budget::new().with_max_time(Duration::from_secs(300)))
}

/// §II-C: "all functions of shape x1x2 + x3x4 with pairwise different
/// variables are not realizable by V-ops alone", but one R-op suffices.
#[test]
fn and_or_shape_needs_an_rop() {
    let f = generators::and_or_22();
    for steps in 1..=4 {
        let spec = SynthSpec::mixed_mode(&f, 0, 1, steps).expect("valid");
        let outcome = synth().run(&spec).expect("runs");
        assert!(
            outcome.is_unrealizable(),
            "x1x2+x3x4 with {steps} V-op steps"
        );
    }
    // One-step legs cannot even produce x1·x2 and x3·x4 *simultaneously*:
    // the shared BE would have to be ~x2 and ~x4 in the same cycle. Two
    // steps (a load cycle with BE = const-0, an AND cycle with BE =
    // const-1) resolve the conflict; two R-ops then OR the products
    // (NOR + inversion).
    let spec = SynthSpec::mixed_mode(&f, 2, 2, 2).expect("valid");
    let outcome = synth().run(&spec).expect("runs");
    assert!(
        outcome.circuit().is_some(),
        "2 R-ops over 2 two-step product legs realize x1x2+x3x4"
    );
}

/// §II-C universality: V-ops alone reach exactly 104 of the 256 3-input
/// functions; each of the paper's escalations closes the gap.
#[test]
fn universality_ladder() {
    let v_only = census(&CensusConfig::new(3));
    assert_eq!(v_only, 104);
    assert!(census(&CensusConfig::new(3).with_pre(4)) == 256);
    assert!(census(&CensusConfig::new(3).with_post(2)) == 256);
    assert!(census(&CensusConfig::new(3).with_tebe(2)) == 256);
}

/// Every V-op-reachable 3-input function is synthesizable with zero R-ops,
/// and (spot-checked) the census and the SAT synthesizer agree both ways.
#[test]
fn census_and_synthesizer_agree_on_samples() {
    // Sampled functions: a few known-reachable and known-unreachable ones.
    let reachable = [
        generators::and_gate(3),
        generators::or_gate(3),
        generators::majority_gate(3), // V(V(0, x1, const-0), x2, ~x3)
    ];
    for f in reachable {
        let spec = SynthSpec::mixed_mode(&f, 0, 1, 3).expect("valid");
        assert!(
            synth().run(&spec).expect("runs").circuit().is_some(),
            "{} should be V-op realizable",
            f.name()
        );
    }
    let unreachable = [generators::xor_gate(3), generators::xnor_gate(3)];
    for f in unreachable {
        let spec = SynthSpec::mixed_mode(&f, 0, 1, 4).expect("valid");
        assert!(
            synth().run(&spec).expect("runs").is_unrealizable(),
            "{} must not be V-op realizable",
            f.name()
        );
    }
}

/// The heuristic mapper is universal: every 4-input function maps and
/// verifies (an instance of the paper's "MM architectures are universal").
#[test]
fn heuristic_is_universal_on_samples() {
    // A structured sample of the 65536 4-input functions.
    for seed in 0..64u64 {
        let bits = seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .rotate_left((seed % 63) as u32)
            & 0xFFFF;
        let tt = TruthTable::from_packed(4, bits).expect("4-input table");
        let f = memristive_mm::boolfn::MultiOutputFn::new(format!("s{seed}"), vec![tt])
            .expect("one output");
        let c = heuristic::map(&f).expect("maps");
        assert!(c.implements(&f), "function {bits:#06x}");
    }
}

/// The paper's Eq. 1/2 identities, across every literal and a pile of
/// random functions (integration-level check of the V-op algebra used by
/// both encoder and simulator).
#[test]
fn vop_identities_hold_broadly() {
    let n = 4;
    let c0 = TruthTable::new_false(n).expect("valid");
    let c1 = TruthTable::new_true(n).expect("valid");
    for seed in 0..32u64 {
        let bits = seed.wrapping_mul(0xD1B54A32D192ED03) & 0xFFFF;
        let f = TruthTable::from_packed(n, bits).expect("valid");
        for v in 1..=n {
            for l in [Literal::Pos(v), Literal::Neg(v)] {
                let lt = l.truth_table(n);
                let nlt = l.complement().truth_table(n);
                assert_eq!(f.v_op(&lt, &c1), &f & &lt);
                assert_eq!(f.v_op(&c0, &nlt), &f & &lt);
                assert_eq!(f.v_op(&lt, &c0), &f | &lt);
                assert_eq!(f.v_op(&c1, &nlt), &f | &lt);
            }
        }
    }
}
